//! The synchronization core of the execution plane, factored out of the
//! public module so it can be model-checked.
//!
//! Everything in here speaks only through the [`crate::sync`] facade —
//! under the `loom-model` feature the mutex, condvar, and completion-queue
//! operations become loom scheduling points, and `tests/loom_plane.rs`
//! exhaustively verifies the protocol properties the public docs promise:
//! no lost wakeups, no double-pop, window-only helpers never steal trials,
//! and a panicking job never deadlocks its submitter.
//!
//! The public `plane` module owns everything process-global (worker
//! threads, thread-count policy, the `OnceLock` singleton); this core is
//! deliberately instantiable so each model execution gets a fresh one.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::sync::{Arc, Condvar, Mutex};

/// A queued unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job tagged with its scheduling class.
pub struct Entry {
    /// Window (intra-trial) jobs jump the queue; trial jobs wait in line.
    pub window: bool,
    /// The work itself.
    pub job: Job,
}

/// Two-priority injector state guarded by the core's mutex.
struct Injector {
    entries: VecDeque<Entry>,
    /// Once set, workers exit instead of parking (queued jobs still drain
    /// first). Only models and tests shut a core down; the process-global
    /// plane lives forever.
    shutdown: bool,
}

/// Injector deque + worker parking + batch submission: the part of the
/// plane whose correctness is argued by model checking rather than review.
pub struct PlaneCore {
    queue: Mutex<Injector>,
    /// Signalled when jobs are pushed (and on shutdown); workers park here.
    work: Condvar,
}

impl Default for PlaneCore {
    fn default() -> Self {
        Self::new()
    }
}

impl PlaneCore {
    /// A fresh, empty core.
    pub fn new() -> Self {
        PlaneCore {
            queue: Mutex::new(Injector {
                entries: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    /// Enqueues a batch: window jobs at the front (order preserved),
    /// trial jobs at the back.
    pub fn push(&self, entries: Vec<Entry>) {
        // Window jobs jump the queue but keep submission order among
        // themselves (reversed push_front); trial jobs append in order.
        let (window, trial): (Vec<Entry>, Vec<Entry>) = entries.into_iter().partition(|e| e.window);
        let mut q = self.queue.lock().unwrap();
        for e in window.into_iter().rev() {
            q.entries.push_front(e);
        }
        q.entries.extend(trial);
        drop(q);
        self.work.notify_all();
    }

    /// Pops the next job, or — with `window_only` — only a front-of-queue
    /// window job (helpers inside a trial must not recurse into another
    /// whole trial).
    pub fn pop(&self, window_only: bool) -> Option<Job> {
        let mut q = self.queue.lock().unwrap();
        if window_only && !q.entries.front().is_some_and(|e| e.window) {
            return None;
        }
        q.entries.pop_front().map(|e| e.job)
    }

    /// Body of a worker thread: run jobs, park when the queue is empty,
    /// exit once [`PlaneCore::shutdown`] is called and the queue is
    /// drained.
    pub fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(e) = q.entries.pop_front() {
                        break e.job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.work.wait(q).unwrap();
                }
            };
            job();
        }
    }

    /// Lets parked workers exit after draining the queue. The process-wide
    /// plane never calls this; models and tests use it so every worker
    /// thread can be joined.
    #[cfg_attr(not(feature = "loom-model"), allow(dead_code))]
    pub fn shutdown(&self) {
        self.queue.lock().unwrap().shutdown = true;
        self.work.notify_all();
    }

    /// Submits `jobs` as one batch and helps until all of them finished,
    /// returning results in index order. This is the submitter side of the
    /// blocking discipline:
    ///
    /// * `window == false` (trial batch): jobs queue at the back and the
    ///   submitter helps with **anything** poppable, including whole stolen
    ///   trials — it is a top-level frame.
    /// * `window == true` (window batch): jobs jump to the front and the
    ///   submitter helps with **window jobs only** — it sits inside a
    ///   trial, and popping another whole trial would recurse unboundedly.
    ///
    /// The submitter parks on the completion queue only when nothing it may
    /// run is poppable, which means every unfinished job is running on some
    /// other thread and will push its completion: no lost wakeups, no
    /// cycles. A panic inside a job is caught, forwarded as a completion,
    /// and resumed here on the submitting thread.
    ///
    /// `on_done(index, &result)` fires on the submitting thread in
    /// completion order as each result is collected (the streaming hook).
    pub fn run_batch<T, C>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
        window: bool,
        mut on_done: C,
    ) -> Vec<T>
    where
        T: Send + 'static,
        C: FnMut(usize, &T),
    {
        let count = jobs.len();
        let done: Arc<CompletionQueue<T>> = Arc::new(CompletionQueue::new());
        let entries = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                let done = Arc::clone(&done);
                let wrapped: Job = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(job));
                    done.push(i, out);
                });
                Entry {
                    window,
                    job: wrapped,
                }
            })
            .collect();
        self.push(entries);

        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let mut received = 0usize;
        while received < count {
            // Help while anything this frame may run is poppable.
            while let Some(job) = self.pop(window) {
                job();
                while let Some((i, out)) = done.try_pop() {
                    received += 1;
                    let v = unwrap_completion(out);
                    on_done(i, &v);
                    slots[i] = Some(v);
                }
                if received == count {
                    break;
                }
            }
            if received == count {
                break;
            }
            // Nothing poppable: every unfinished job is running on another
            // thread and will push its completion.
            let (i, out) = done.pop_wait();
            received += 1;
            let v = unwrap_completion(out);
            on_done(i, &v);
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("plane job completed without a result"))
            .collect()
    }
}

/// Outcome of one job: its index and either its value or the payload of
/// the panic that killed it.
type Completion<T> = (usize, std::thread::Result<T>);

/// Per-batch completion mailbox: workers push `(index, result)` as jobs
/// finish; the submitter drains opportunistically while helping and parks
/// here when no helpable work remains. Built on the facade so the
/// park/notify pair is part of the model-checked protocol (it replaced a
/// channel dependency precisely so the model sees the blocking edge).
struct CompletionQueue<T> {
    q: Mutex<VecDeque<Completion<T>>>,
    ready: Condvar,
}

impl<T> CompletionQueue<T> {
    fn new() -> Self {
        CompletionQueue {
            q: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, index: usize, out: std::thread::Result<T>) {
        let mut q = self.q.lock().unwrap();
        q.push_back((index, out));
        drop(q);
        self.ready.notify_all();
    }

    fn try_pop(&self) -> Option<Completion<T>> {
        self.q.lock().unwrap().pop_front()
    }

    fn pop_wait(&self) -> Completion<T> {
        let mut q = self.q.lock().unwrap();
        loop {
            if let Some(c) = q.pop_front() {
                return c;
            }
            q = self.ready.wait(q).unwrap();
        }
    }
}

/// Unwraps a completion, resuming a forwarded panic on this thread.
pub fn unwrap_completion<T>(out: std::thread::Result<T>) -> T {
    match out {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    }
}
