//! E9 — Ablation: the message-size parameter `a`.
//!
//! §1.2 notes that increasing the message-size parameter yields faster
//! protocols (the `n/a` terms in `T`). Sweeps `a` for Algorithm 2 and
//! reports time and packet counts: `T` falls roughly as `1/a` until the
//! latency term dominates, while `Q` is untouched. Rows are multi-trial
//! means fanned across the worker pool.

use crate::metrics::{measure_par, trials, ExperimentParams, ExperimentRecord, MetricsSink};
use crate::runners::run_crash_multi;
use crate::table::{f, Table};

const EXPERIMENT: &str = "msg_size";

/// Runs the message-size ablation, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the message-size ablation, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let (n, k, b) = (8192usize, 16usize, 8usize);
    let mut t = Table::new(
        "E9 — Alg 2: message size a sweep (n = 8192, k = 16, beta = 0.5)",
        &["a (bits)", "T (units)", "M (packets)", "Q"],
    );
    for a in [64usize, 256, 1024, 4096, 16384] {
        let m = measure_par(trials, 90, move |seed| {
            run_crash_multi(n, k, b, b, a, false, seed)
        });
        t.row(vec![
            a.to_string(),
            f(m.time_units.mean),
            f(m.messages.mean),
            f(m.queries.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("a={a}"),
            ExperimentParams::nkb(n, k, b).with_a(a),
            m,
        ));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn smaller_messages_cost_more_time_and_packets() {
        let small = crate::runners::run_crash_multi(2048, 8, 4, 4, 64, false, 1);
        let large = crate::runners::run_crash_multi(2048, 8, 4, 4, 8192, false, 1);
        assert!(small.messages_sent > large.messages_sent);
        assert!(small.virtual_time_units > large.virtual_time_units);
        // Q is schedule-dependent (different delivery orders), but both
        // must respect the Lemma 2.11 bound: (n/k)/(1−β) + n/k + slack.
        let bound = (2048.0 / 8.0) * 3.0 + 8.0;
        assert!((small.max_nonfaulty_queries as f64) <= bound);
        assert!((large.max_nonfaulty_queries as f64) <= bound);
    }
}
