//! E9 — Ablation: the message-size parameter `a`.
//!
//! §1.2 notes that increasing the message-size parameter yields faster
//! protocols (the `n/a` terms in `T`). Sweeps `a` for Algorithm 2 and
//! reports time and packet counts: `T` falls roughly as `1/a` until the
//! latency term dominates, while `Q` is untouched.

use crate::runners::run_crash_multi;
use crate::table::{f, Table};

/// Runs the message-size ablation.
pub fn run() -> Vec<Table> {
    let (n, k, b) = (8192usize, 16usize, 8usize);
    let mut t = Table::new(
        "E9 — Alg 2: message size a sweep (n = 8192, k = 16, beta = 0.5)",
        &["a (bits)", "T (units)", "M (packets)", "Q"],
    );
    for a in [64usize, 256, 1024, 4096, 16384] {
        let r = run_crash_multi(n, k, b, b, a, false, 90);
        t.row(vec![
            a.to_string(),
            f(r.virtual_time_units),
            r.messages_sent.to_string(),
            r.max_nonfaulty_queries.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn smaller_messages_cost_more_time_and_packets() {
        let small = crate::runners::run_crash_multi(2048, 8, 4, 4, 64, false, 1);
        let large = crate::runners::run_crash_multi(2048, 8, 4, 4, 8192, false, 1);
        assert!(small.messages_sent > large.messages_sent);
        assert!(small.virtual_time_units > large.virtual_time_units);
        // Q is schedule-dependent (different delivery orders), but both
        // must respect the Lemma 2.11 bound: (n/k)/(1−β) + n/k + slack.
        let bound = (2048.0 / 8.0) * 3.0 + 8.0;
        assert!((small.max_nonfaulty_queries as f64) <= bound);
        assert!((large.max_nonfaulty_queries as f64) <= bound);
    }
}
