//! E-serve — multi-client front-door load experiment (`fig_serve`).
//!
//! Drives the `dr-runtime` [`FrontDoor`] with concurrent client threads
//! over three workloads and records the serving-plane metrics the
//! admission plane exists to improve:
//!
//! * **cold-disjoint** — every request asks a distinct range: no overlap,
//!   so amortized Q per request equals the uncached cost. This is the
//!   baseline row.
//! * **overlap-hot** — all clients walk the same rotation over a small
//!   hot set of ranges: cross-client overlap is total, so after first
//!   touch the plane serves requests from cache, and concurrent first
//!   touches coalesce into single-flight fetches.
//! * **warm-repeat** — the overlap workload replayed on the same door:
//!   everything is cached, amortized Q per request is exactly 0.
//!
//! The upstream source is throttled (a fixed sleep per upstream `bits`
//! call) to model a remote data source; that is what makes latency and
//! coalescing observable rather than a function of memcpy speed.
//!
//! Results go to `BENCH_serve.json` with a serving-specific schema
//! (requests/s, p50/p99 latency, amortized Q, coalesce rate) rather than
//! the Q/T/M `ExperimentRecord` schema of the protocol experiments.
//! [`gate`] holds the CI assertions: warm amortized Q strictly below
//! cold, coalescing observed on the overlap workload, bit-identical
//! responses everywhere (checked inside the workers).

use crate::table::{f, Table};
use dr_core::{ArraySource, BitArray, Source};
use dr_runtime::{FrontDoor, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const EXPERIMENT: &str = "serve";

/// Grid for one serve run.
#[derive(Debug, Clone, Copy)]
pub struct ServeGrid {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues per workload.
    pub requests_per_client: usize,
    /// Bits per request.
    pub range_bits: usize,
    /// Hot-set size for the overlap workload.
    pub hot_ranges: usize,
    /// Peer fleet size.
    pub peers: usize,
    /// Upstream sleep per `bits` call, in microseconds.
    pub throttle_us: u64,
}

impl ServeGrid {
    /// The full grid used for the committed `BENCH_serve.json`.
    pub fn full() -> Self {
        ServeGrid {
            clients: 8,
            requests_per_client: 24,
            range_bits: 16_384,
            hot_ranges: 8,
            peers: 4,
            throttle_us: 200,
        }
    }

    /// Reduced grid for the CI smoke job.
    pub fn smoke() -> Self {
        ServeGrid {
            clients: 4,
            requests_per_client: 8,
            range_bits: 4_096,
            hot_ranges: 4,
            peers: 2,
            throttle_us: 200,
        }
    }

    /// Input size: the cold workload partitions the array exactly.
    pub fn n_bits(&self) -> usize {
        self.clients * self.requests_per_client * self.range_bits
    }
}

/// One `BENCH_serve.json` row: a workload under a grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeRecord {
    /// Workload name: `cold-disjoint`, `overlap-hot`, or `warm-repeat`.
    pub workload: String,
    /// Input size in bits.
    pub n_bits: usize,
    /// Peer fleet size.
    pub peers: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests served.
    pub requests: usize,
    /// Bits per request.
    pub range_bits: usize,
    /// Upstream sleep per `bits` call, in microseconds.
    pub throttle_us: u64,
    /// Served requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Median request latency (queue + service), microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: f64,
    /// Mean upstream bits charged per request (amortized Q).
    pub amortized_q_per_request: f64,
    /// Upstream bits a request would pay with no plane (= range_bits).
    pub uncached_q_per_request: f64,
    /// Coalesced words / words missed (0 when nothing overlapped in
    /// flight).
    pub coalesce_rate: f64,
    /// Cache hits / words requested.
    pub hit_rate: f64,
    /// Total bits pulled from the upstream source by this workload.
    pub upstream_bits: u64,
    /// Wall-clock duration of the workload.
    pub wall_clock_secs: f64,
}

/// A source that sleeps on every `bits` call, modelling a remote
/// upstream whose reads are the expensive resource.
struct ThrottledSource {
    inner: ArraySource,
    sleep: Duration,
}

impl Source for ThrottledSource {
    fn len(&self) -> usize {
        Source::len(&self.inner)
    }
    fn bit(&self, index: usize) -> bool {
        self.inner.bit(index)
    }
    fn bits(&self, range: Range<usize>) -> BitArray {
        if !self.sleep.is_zero() {
            std::thread::sleep(self.sleep);
        }
        Source::bits(&self.inner, range)
    }
}

/// Request ranges for client `c` under a workload.
fn client_ranges(grid: &ServeGrid, workload: &str, c: usize) -> Vec<Range<usize>> {
    let n = grid.n_bits();
    (0..grid.requests_per_client)
        .map(|r| {
            let lo = match workload {
                // Partition: every request a distinct slice.
                "cold-disjoint" => (c * grid.requests_per_client + r) * grid.range_bits,
                // All clients walk the same hot-set rotation, so first
                // touches race (coalescing) and the rest hit cache.
                _ => (r % grid.hot_ranges) * grid.range_bits,
            };
            debug_assert!(lo + grid.range_bits <= n);
            lo..lo + grid.range_bits
        })
        .collect()
}

/// Runs one workload over `door`, returning its record.
fn run_workload(grid: &ServeGrid, workload: &str, door: &FrontDoor, input: &BitArray) -> ServeRecord {
    let stats_before = door.plane().cache().stats();
    let barrier = Arc::new(Barrier::new(grid.clients));
    let started = Instant::now();
    // dr-lint: allow(raw-thread-spawn): real client threads are the workload under measurement — pooling them would serialize the very contention the benchmark exists to exercise
    let per_client: Vec<(Vec<Duration>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..grid.clients)
            .map(|c| {
                let door = door.clone();
                let barrier = Arc::clone(&barrier);
                let ranges = client_ranges(grid, workload, c);
                scope.spawn(move || {
                    barrier.wait();
                    let mut latencies = Vec::with_capacity(ranges.len());
                    let mut metered = 0u64;
                    for range in ranges {
                        let outcome = door.serve(range.clone());
                        assert_eq!(
                            outcome.bits,
                            input.slice(range.clone()),
                            "served bits diverged from the source on {range:?}"
                        );
                        latencies.push(outcome.latency());
                        metered += outcome.metered_bits;
                    }
                    (latencies, metered)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = started.elapsed();
    let stats_after = door.plane().cache().stats();

    let mut latencies: Vec<Duration> = per_client.iter().flat_map(|(l, _)| l.clone()).collect();
    latencies.sort_unstable();
    let requests = latencies.len();
    let metered_total: u64 = per_client.iter().map(|(_, m)| m).sum();
    let pct = |p: f64| -> f64 {
        let idx = ((requests as f64 - 1.0) * p).round() as usize;
        latencies[idx].as_secs_f64() * 1e6
    };
    let fetched = stats_after.misses - stats_before.misses;
    let coalesced = stats_after.coalesced - stats_before.coalesced;
    let hits = stats_after.hits - stats_before.hits;
    let words_requested = hits + fetched;
    ServeRecord {
        workload: workload.to_string(),
        n_bits: grid.n_bits(),
        peers: grid.peers,
        clients: grid.clients,
        requests,
        range_bits: grid.range_bits,
        throttle_us: grid.throttle_us,
        requests_per_sec: requests as f64 / wall.as_secs_f64(),
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        amortized_q_per_request: metered_total as f64 / requests as f64,
        uncached_q_per_request: grid.range_bits as f64,
        coalesce_rate: if fetched == 0 {
            0.0
        } else {
            coalesced as f64 / fetched as f64
        },
        hit_rate: if words_requested == 0 {
            0.0
        } else {
            hits as f64 / words_requested as f64
        },
        upstream_bits: stats_after.upstream_bits - stats_before.upstream_bits,
        wall_clock_secs: wall.as_secs_f64(),
    }
}

/// Runs the three workloads under `grid` and returns their records.
pub fn run_grid(grid: &ServeGrid) -> Vec<ServeRecord> {
    let n = grid.n_bits();
    let mut rng = StdRng::seed_from_u64(0x005e_124e);
    let input = BitArray::random(n, &mut rng);
    let make_door = || {
        FrontDoor::new(
            ThrottledSource {
                inner: ArraySource::new(input.clone()),
                sleep: Duration::from_micros(grid.throttle_us),
            },
            ServeConfig::new(grid.peers).with_max_in_flight(grid.clients),
        )
    };

    let cold_door = make_door();
    let cold = run_workload(grid, "cold-disjoint", &cold_door, &input);

    let overlap_door = make_door();
    let overlap = run_workload(grid, "overlap-hot", &overlap_door, &input);
    // Same door, everything cached.
    let warm = run_workload(grid, "warm-repeat", &overlap_door, &input);

    vec![cold, overlap, warm]
}

/// The CI gate over one grid's records. Panics with a diagnostic when
/// the admission plane fails to amortize.
///
/// # Panics
///
/// Panics if warm amortized Q is not strictly below cold, if the overlap
/// workload shows no coalescing, or if the warm replay still paid
/// upstream bits.
pub fn gate(records: &[ServeRecord]) {
    let by = |name: &str| {
        records
            .iter()
            .find(|r| r.workload == name)
            .unwrap_or_else(|| panic!("missing workload {name}"))
    };
    let cold = by("cold-disjoint");
    let overlap = by("overlap-hot");
    let warm = by("warm-repeat");
    assert!(
        overlap.amortized_q_per_request < cold.amortized_q_per_request,
        "overlap amortized Q/request ({}) must be strictly below cold ({})",
        overlap.amortized_q_per_request,
        cold.amortized_q_per_request
    );
    assert!(
        warm.amortized_q_per_request == 0.0 && warm.upstream_bits == 0,
        "warm replay must be fully served from cache (got {} bits/request, {} upstream)",
        warm.amortized_q_per_request,
        warm.upstream_bits
    );
    assert!(
        overlap.coalesce_rate > 0.0,
        "overlap workload must observe single-flight coalescing"
    );
    assert!(
        cold.amortized_q_per_request <= cold.uncached_q_per_request,
        "the plane must never charge more than the uncached cost"
    );
}

/// Renders records as the experiment table.
pub fn tables(records: &[ServeRecord]) -> Vec<Table> {
    let mut t = Table::new(
        "E-serve — front-door load: amortized Q, latency, coalescing",
        &[
            "workload",
            "req",
            "req/s",
            "p50 µs",
            "p99 µs",
            "Q/req",
            "uncached",
            "coalesce",
            "hit rate",
        ],
    );
    for r in records {
        t.row(vec![
            r.workload.clone(),
            r.requests.to_string(),
            f(r.requests_per_sec),
            f(r.p50_latency_us),
            f(r.p99_latency_us),
            f(r.amortized_q_per_request),
            f(r.uncached_q_per_request),
            f(r.coalesce_rate),
            f(r.hit_rate),
        ]);
    }
    vec![t]
}

/// Writes `BENCH_serve.json` into `dir` (created if missing).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(dir: &Path, records: &[ServeRecord]) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{EXPERIMENT}.json"));
    // The vendored serde implements `Serialize` for `Vec`, not slices.
    let mut text = serde::json::to_string_pretty(&records.to_vec());
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Runs the full grid, gates, and returns the table (the `dr experiments
/// --only serve` path).
pub fn run() -> Vec<Table> {
    let records = run_grid(&ServeGrid::full());
    gate(&records);
    tables(&records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_amortizes_and_gates() {
        let records = run_grid(&ServeGrid::smoke());
        assert_eq!(records.len(), 3);
        gate(&records);
        let cold = &records[0];
        // Disjoint requests pay full price.
        assert_eq!(cold.amortized_q_per_request, cold.uncached_q_per_request);
        assert_eq!(cold.upstream_bits as usize, cold.n_bits);
    }

    #[test]
    fn json_round_trips() {
        let grid = ServeGrid {
            clients: 2,
            requests_per_client: 2,
            range_bits: 512,
            hot_ranges: 2,
            peers: 2,
            throttle_us: 0,
        };
        let records = run_grid(&grid);
        let dir = std::env::temp_dir().join(format!("dr_serve_json_{}", std::process::id()));
        let path = write_json(&dir, &records).expect("write json");
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<ServeRecord> = serde::json::from_str(&text).expect("parse");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[1].workload, "overlap-hot");
        std::fs::remove_dir_all(&dir).ok();
    }
}
