//! One module per reproduced artifact. See DESIGN.md §3 for the index.

pub mod byz_committee;
pub mod crash_scaling;
pub mod crash_single;
pub mod exhaustive;
pub mod hotpath;
pub mod lower_bound;
pub mod msg_size;
pub mod multi_cycle;
pub mod oracle;
pub mod serve;
pub mod sim_scaling;
pub mod strategy_ablation;
pub mod suite;
pub mod synchrony;
pub mod table1;
pub mod two_cycle;

use crate::metrics::MetricsSink;
use crate::table::Table;

/// Runs every experiment in sequence, discarding metrics records.
pub fn run_all() -> Vec<Table> {
    run_all_metered(&mut MetricsSink::new())
}

/// Runs every experiment in sequence, recording metrics into `sink`
/// (one `BENCH_<experiment>.json` group per module on
/// [`MetricsSink::write_json`]).
pub fn run_all_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let mut tables = Vec::new();
    tables.extend(table1::run_metered(sink));
    tables.extend(crash_single::run_metered(sink));
    tables.extend(crash_scaling::run_metered(sink));
    tables.extend(byz_committee::run_metered(sink));
    tables.extend(two_cycle::run_metered(sink));
    tables.extend(multi_cycle::run_metered(sink));
    tables.extend(lower_bound::run_metered(sink));
    tables.extend(oracle::run_metered(sink));
    tables.extend(msg_size::run_metered(sink));
    tables.extend(strategy_ablation::run_metered(sink));
    tables.extend(synchrony::run_metered(sink));
    tables.extend(exhaustive::run_metered(sink));
    tables.extend(hotpath::run_metered(sink));
    tables.extend(sim_scaling::run_metered(sink));
    // `suite` is deliberately absent: it is the meta-experiment that
    // *times* the twelve above plus the chaos campaign (run it via
    // `dr experiments --only suite` or `fig_suite`). `serve` is also
    // run separately (`dr serve-bench` / `fig_serve`): it measures wall
    // clock against a throttled upstream, so batching it with the
    // deterministic experiments would only slow them down.
    tables
}
