//! One module per reproduced artifact. See DESIGN.md §3 for the index.

pub mod byz_committee;
pub mod crash_scaling;
pub mod crash_single;
pub mod exhaustive;
pub mod lower_bound;
pub mod msg_size;
pub mod multi_cycle;
pub mod oracle;
pub mod strategy_ablation;
pub mod synchrony;
pub mod table1;
pub mod two_cycle;

use crate::table::Table;

/// Runs every experiment in sequence, printing each table.
pub fn run_all() -> Vec<Table> {
    let mut tables = Vec::new();
    tables.extend(table1::run());
    tables.extend(crash_single::run());
    tables.extend(crash_scaling::run());
    tables.extend(byz_committee::run());
    tables.extend(two_cycle::run());
    tables.extend(multi_cycle::run());
    tables.extend(lower_bound::run());
    tables.extend(oracle::run());
    tables.extend(msg_size::run());
    tables.extend(strategy_ablation::run());
    tables.extend(synchrony::run());
    tables.extend(exhaustive::run());
    tables
}
