//! E8 — Theorems 4.1 / 4.2: baseline vs Download-based Oracle Data
//! Collection.
//!
//! The §4 application: total and per-node source reads for the sampling
//! baseline (at several sample sizes `q`) against the Download-based
//! pipeline, plus the ODD honest-range check and the robustness gap of
//! small samples. The E8b seed sweeps fan across the worker pool.

use crate::metrics::{ExperimentParams, ExperimentRecord, Measured, MetricsSink};
use crate::par;
use crate::table::{f, Table};
use dr_oracle::{run_baseline, run_download_based, DownloadEngine, OracleConfig};

const EXPERIMENT: &str = "oracle";

fn config(seed: u64) -> OracleConfig {
    // k must be large enough for the 2-cycle sampler to beat naive
    // (p = (k − 2b)/(2τ) ≥ 2); 128 nodes with 12 Byzantine gives p ≈ 4.
    OracleConfig {
        nodes: 128,
        byz_nodes: 12,
        honest_sources: 5,
        corrupt_sources: 2,
        cells: 128,
        truth_base: 1_000_000,
        spread: 200,
        seed,
    }
}

/// Runs the oracle ODC comparison, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the oracle ODC comparison, recording per-pipeline metrics. The
/// ODC pipelines meter source reads rather than simulator messages, so
/// records carry the total read bits as the query statistic.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let mut t = Table::new(
        "E8a — ODC cost: baseline (Thm 4.1) vs Download-based (Thm 4.2); 128 nodes (12 byz), 7 sources (2 corrupt), 128 cells",
        &["pipeline", "total read bits", "max node read bits", "ODD ok"],
    );
    let cfg = config(42);
    let m = cfg.sources();
    let record = |sink: &mut MetricsSink, label: String, byz: usize, total: u64| {
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            label,
            ExperimentParams::nkb(cfg.cells, cfg.nodes, byz),
            Measured::queries_only(&[total as f64], 0.0),
        ));
    };
    for q in [1usize, 3, m] {
        let out = run_baseline(&cfg, q);
        t.row(vec![
            format!("baseline q={q}"),
            out.total_read_bits.to_string(),
            out.max_node_read_bits.to_string(),
            out.odd_satisfied().to_string(),
        ]);
        record(
            sink,
            format!("E8a baseline q={q}"),
            cfg.byz_nodes,
            out.total_read_bits,
        );
    }
    let dl = run_download_based(&cfg, DownloadEngine::TwoCycle);
    t.row(vec![
        "download (2-cycle)".into(),
        dl.total_read_bits.to_string(),
        dl.max_node_read_bits.to_string(),
        dl.odd_satisfied().to_string(),
    ]);
    record(
        sink,
        "E8a download (2-cycle)".into(),
        cfg.byz_nodes,
        dl.total_read_bits,
    );
    let mut crash_cfg = cfg;
    crash_cfg.byz_nodes = 0;
    let dlc = run_download_based(&crash_cfg, DownloadEngine::CrashMulti);
    t.row(vec![
        "download (Alg 2, crash nodes)".into(),
        dlc.total_read_bits.to_string(),
        dlc.max_node_read_bits.to_string(),
        dlc.odd_satisfied().to_string(),
    ]);
    record(
        sink,
        "E8a download (Alg 2, crash nodes)".into(),
        0,
        dlc.total_read_bits,
    );

    // Robustness: ODD violation rate of small samples across seeds.
    let mut rob = Table::new(
        "E8b — ODD violation rate over 20 seeds (near-majority garbage node reports)",
        &["pipeline", "violation rate"],
    );
    let small = |seed| OracleConfig {
        nodes: 16,
        byz_nodes: 7,
        honest_sources: 5,
        corrupt_sources: 2,
        cells: 32,
        truth_base: 1_000_000,
        spread: 200,
        seed,
    };
    for q in [1usize, 3] {
        let ok = par::run_indexed(20, move |seed| {
            run_baseline(&small(seed as u64), q).odd_satisfied()
        });
        let bad = ok.iter().filter(|&&s| !s).count();
        rob.row(vec![format!("baseline q={q}"), f(bad as f64 / 20.0)]);
    }
    {
        let ok = par::run_indexed(20, move |seed| {
            run_download_based(&small(seed as u64), DownloadEngine::TwoCycle).odd_satisfied()
        });
        let bad = ok.iter().filter(|&&s| !s).count();
        rob.row(vec!["download (2-cycle)".into(), f(bad as f64 / 20.0)]);
    }
    vec![t, rob]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_based_is_cheaper_and_sound() {
        let cfg = config(1);
        let base = run_baseline(&cfg, cfg.sources());
        let dl = run_download_based(&cfg, DownloadEngine::TwoCycle);
        assert!(dl.odd_satisfied());
        assert!(dl.max_node_read_bits < base.max_node_read_bits);
    }
}
