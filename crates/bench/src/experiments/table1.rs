//! E1 — Table 1: the cross-protocol complexity comparison.
//!
//! The paper's Table 1 compares prior synchronous results with the new
//! asynchronous protocols by query complexity, fault model, and
//! resilience. This experiment regenerates the comparison empirically:
//! one representative configuration per row, measured `Q`/`T`/`M`
//! (means over the configured trials, fanned across the worker pool),
//! and the theory bound the measurement should track.

use crate::metrics::{measure_par, trials, ExperimentParams, ExperimentRecord, MetricsSink};
use crate::runners::{
    run_committee, run_crash_multi, run_multi_cycle, run_naive, run_single_crash, run_two_cycle,
    ByzMix,
};
use crate::table::{f, Table};
use dr_core::PeerId;

const EXPERIMENT: &str = "table1";

/// Runs the Table 1 comparison, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the Table 1 comparison, recording one metrics record per row.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let mut t = Table::new(
        "Table 1 — Download protocols, measured vs theory",
        &[
            "protocol",
            "faults",
            "beta",
            "n",
            "k",
            "Q meas",
            "Q theory",
            "T (units)",
            "M (msgs)",
        ],
    );

    // Naive baseline: works under any fault fraction, Q = n.
    {
        let (n, k) = (8192usize, 32usize);
        let m = measure_par(trials, 1, move |seed| run_naive(n, k, seed));
        t.row(vec![
            "naive".into(),
            "any".into(),
            "any".into(),
            n.to_string(),
            k.to_string(),
            f(m.queries.mean),
            n.to_string(),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            "naive",
            ExperimentParams::nk(n, k),
            m,
        ));
    }

    // Algorithm 1 (Thm 2.3): one crash.
    {
        let (n, k) = (8192usize, 32usize);
        let m = measure_par(trials, 2, move |seed| {
            run_single_crash(n, k, seed, Some(PeerId(5)))
        });
        let theory = n / k + n / (k * (k - 1)) + 1;
        t.row(vec![
            "Alg 1 (Thm 2.3)".into(),
            "crash".into(),
            "1/k".into(),
            n.to_string(),
            k.to_string(),
            f(m.queries.mean),
            theory.to_string(),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            "Alg 1 (Thm 2.3)",
            ExperimentParams::nkb(n, k, 1),
            m,
        ));
    }

    // Algorithm 2 (Thm 2.13) at β = 1/2 and β ≈ 0.9.
    for (b, crashes) in [(16usize, 16usize), (28, 28)] {
        let (n, k) = (8192usize, 32usize);
        let m = measure_par(trials, 3, move |seed| {
            run_crash_multi(n, k, b, crashes, 1024, true, seed)
        });
        let beta = b as f64 / k as f64;
        let theory = (n as f64 / k as f64) * (1.0 / (1.0 - beta)) + n as f64 / k as f64;
        t.row(vec![
            "Alg 2 (Thm 2.13)".into(),
            "crash".into(),
            f(beta),
            n.to_string(),
            k.to_string(),
            f(m.queries.mean),
            f(theory),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("Alg 2 (Thm 2.13) beta={beta}"),
            ExperimentParams::nkb(n, k, b).with_a(1024),
            m,
        ));
    }

    // Deterministic committee (Thm 3.4): Byzantine minority.
    {
        let (n, k, byz) = (8192usize, 32usize, 8usize);
        let m = measure_par(trials, 4, move |seed| run_committee(n, k, byz, byz, seed));
        let theory = n * (2 * byz + 1) / k;
        t.row(vec![
            "Committee (Thm 3.4)".into(),
            "byzantine".into(),
            f(byz as f64 / k as f64),
            n.to_string(),
            k.to_string(),
            f(m.queries.mean),
            theory.to_string(),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            "Committee (Thm 3.4)",
            ExperimentParams::nkb(n, k, byz),
            m,
        ));
    }

    // 2-cycle randomized (Thm 3.7).
    {
        let (n, k, byz) = (1usize << 15, 256usize, 32usize);
        let m = measure_par(trials, 5, move |seed| {
            run_two_cycle(n, k, byz, ByzMix::Mixed, seed)
        });
        let theory = match crate::runners::two_cycle_segmentation(n, k, byz) {
            Some((seg, _)) => n / seg.count() + 2 * k,
            None => n,
        };
        t.row(vec![
            "2-cycle (Thm 3.7)".into(),
            "byzantine".into(),
            f(byz as f64 / k as f64),
            n.to_string(),
            k.to_string(),
            f(m.queries.mean),
            theory.to_string(),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            "2-cycle (Thm 3.7)",
            ExperimentParams::nkb(n, k, byz),
            m,
        ));
    }

    // Multi-cycle randomized (Thm 3.12).
    {
        let (n, k, byz) = (1usize << 15, 256usize, 32usize);
        let m = measure_par(trials, 6, move |seed| {
            run_multi_cycle(n, k, byz, ByzMix::Mixed, seed)
        });
        let theory = match dr_protocols::MultiCyclePlan::choose(n, k, byz) {
            dr_protocols::MultiCyclePlan::Sampled {
                initial_segments, ..
            } => n / initial_segments + 2 * k,
            dr_protocols::MultiCyclePlan::Naive => n,
        };
        t.row(vec![
            "multi-cycle (Thm 3.12)".into(),
            "byzantine".into(),
            f(byz as f64 / k as f64),
            n.to_string(),
            k.to_string(),
            f(m.queries.mean),
            theory.to_string(),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            "multi-cycle (Thm 3.12)",
            ExperimentParams::nkb(n, k, byz),
            m,
        ));
    }

    // β ≥ 1/2 Byzantine: the lower bounds say only the naive protocol
    // works; fig_lower_bound demonstrates the attack.
    {
        let (n, k) = (8192usize, 32usize);
        let m = measure_par(trials, 7, move |seed| run_naive(n, k, seed));
        t.row(vec![
            "naive = optimal (Thm 3.1/3.2)".into(),
            "byzantine".into(),
            ">= 0.50".into(),
            n.to_string(),
            k.to_string(),
            f(m.queries.mean),
            n.to_string(),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            "naive = optimal (Thm 3.1/3.2)",
            ExperimentParams::nkb(n, k, k / 2),
            m,
        ));
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use crate::metrics::MetricsSink;

    #[test]
    fn table1_has_all_rows_and_records() {
        let mut sink = MetricsSink::new();
        let tables = super::run_metered(&mut sink);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 8);
        assert_eq!(sink.records().len(), 8);
        assert!(sink.records().iter().all(|r| r.experiment == "table1"));
    }
}
