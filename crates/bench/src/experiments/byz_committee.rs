//! E4 — Theorem 3.4: the deterministic committee protocol's `Q` grows
//! linearly in the Byzantine budget `t` and meets the naive cost as
//! `β → 1/2`. Each row is a multi-trial mean fanned across the pool.

use crate::metrics::{measure_par, trials, ExperimentParams, ExperimentRecord, MetricsSink};
use crate::runners::{run_committee, run_naive};
use crate::table::{f, Table};

const EXPERIMENT: &str = "byz_committee";

/// Runs the committee-scaling experiment, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the committee-scaling experiment, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let (n, k) = (8192usize, 64usize);
    let naive_q = run_naive(n, k, 77).max_nonfaulty_queries;
    let mut t = Table::new(
        "E4 — Committee protocol: Q vs t (n = 8192, k = 64; naive = 8192)",
        &[
            "t",
            "beta",
            "Q meas",
            "Q theory = n(2t+1)/k",
            "vs naive",
            "M",
        ],
    );
    for byz in [0usize, 2, 4, 8, 16, 24, 31] {
        let m = measure_par(trials, 21 + byz as u64, move |seed| {
            run_committee(n, k, byz, byz, seed)
        });
        let theory = (n * (2 * byz + 1)).div_ceil(k);
        t.row(vec![
            byz.to_string(),
            f(byz as f64 / k as f64),
            f(m.queries.mean),
            theory.to_string(),
            f(m.queries.mean / naive_q as f64),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("t={byz}"),
            ExperimentParams::nkb(n, k, byz),
            m,
        ));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn q_grows_linearly_in_t() {
        let n = 512;
        let k = 16;
        let q1 = crate::runners::run_committee(n, k, 1, 1, 1).max_nonfaulty_queries;
        let q3 = crate::runners::run_committee(n, k, 3, 3, 2).max_nonfaulty_queries;
        // (2·3+1)/(2·1+1) = 7/3 ≈ 2.33× more queries.
        assert!(q3 > 2 * q1);
    }
}
