//! E4 — Theorem 3.4: the deterministic committee protocol's `Q` grows
//! linearly in the Byzantine budget `t` and meets the naive cost as
//! `β → 1/2`.

use crate::runners::{run_committee, run_naive};
use crate::table::{f, Table};

/// Runs the committee-scaling experiment.
pub fn run() -> Vec<Table> {
    let (n, k) = (8192usize, 64usize);
    let naive_q = run_naive(n, k, 77).max_nonfaulty_queries;
    let mut t = Table::new(
        "E4 — Committee protocol: Q vs t (n = 8192, k = 64; naive = 8192)",
        &["t", "beta", "Q meas", "Q theory = n(2t+1)/k", "vs naive", "M"],
    );
    for byz in [0usize, 2, 4, 8, 16, 24, 31] {
        let r = run_committee(n, k, byz, byz, 21 + byz as u64);
        let theory = (n * (2 * byz + 1)).div_ceil(k);
        t.row(vec![
            byz.to_string(),
            f(byz as f64 / k as f64),
            r.max_nonfaulty_queries.to_string(),
            theory.to_string(),
            f(r.max_nonfaulty_queries as f64 / naive_q as f64),
            r.messages_sent.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn q_grows_linearly_in_t() {
        let n = 512;
        let k = 16;
        let q1 = crate::runners::run_committee(n, k, 1, 1, 1).max_nonfaulty_queries;
        let q3 = crate::runners::run_committee(n, k, 3, 3, 2).max_nonfaulty_queries;
        // (2·3+1)/(2·1+1) = 7/3 ≈ 2.33× more queries.
        assert!(q3 > 2 * q1);
    }
}
