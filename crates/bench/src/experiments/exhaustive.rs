//! E12 — Bounded model checking of the deterministic protocols.
//!
//! Enumerates every message-delivery schedule of tiny instances (per
//! crash pattern) and checks the Download specification on each: the
//! "for every execution" quantifier of Theorems 2.3 / 2.13 / 3.4, checked
//! mechanically rather than sampled. Crash patterns are independent and
//! fan across the worker pool.

use crate::metrics::{ExperimentParams, ExperimentRecord, Measured, MetricsSink};
use crate::par;
use crate::table::Table;
use dr_core::{BitArray, PeerId};
use dr_protocols::{CommitteeDownload, CrashMultiDownload, SingleCrashDownload};
use dr_sim::explore::{explore, ExploreConfig};

const EXPERIMENT: &str = "exhaustive";

fn input(n: usize) -> BitArray {
    BitArray::from_fn(n, |i| (i * 11 + 1) % 3 == 0)
}

/// Runs the model-checking sweep, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the model-checking sweep, recording one record per pattern. The
/// checker enumerates schedules rather than metering runs, so a record's
/// `trials` field carries the number of schedules explored and its
/// statistics are empty.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let mut t = Table::new(
        "E12 — exhaustive schedule enumeration (tiny instances, all crash patterns)",
        &[
            "protocol",
            "n",
            "k",
            "crashed",
            "schedules",
            "exhaustive",
            "verdict",
        ],
    );
    let budget = 60_000u64;
    let record = |sink: &mut MetricsSink,
                  label: String,
                  n: usize,
                  k: usize,
                  report: &dr_sim::explore::ExploreReport| {
        let mut rec = ExperimentRecord::new(
            EXPERIMENT,
            label,
            ExperimentParams::nk(n, k),
            Measured::queries_only(&[], 0.0),
        );
        rec.trials = report.schedules;
        sink.push(rec);
    };

    // Algorithm 1, every single-crash pattern.
    {
        let (n, k) = (6usize, 3usize);
        let mut patterns: Vec<Vec<PeerId>> = vec![vec![]];
        patterns.extend((0..k).map(|v| vec![PeerId(v)]));
        let job_patterns = patterns.clone();
        let reports = par::run_indexed(patterns.len(), move |i| {
            let config = ExploreConfig {
                max_schedules: budget,
                ..ExploreConfig::new(k, input(n)).with_crashed(job_patterns[i].clone())
            };
            explore(&config, move |_| SingleCrashDownload::new(n, k))
        });
        for (crashed, report) in patterns.iter().zip(&reports) {
            let label = if crashed.is_empty() {
                "-".to_string()
            } else {
                format!(
                    "{:?}",
                    crashed.iter().map(|p| p.index()).collect::<Vec<_>>()
                )
            };
            t.row(vec![
                "Alg 1".into(),
                n.to_string(),
                k.to_string(),
                label.clone(),
                report.schedules.to_string(),
                report.exhaustive.to_string(),
                verdict(report),
            ]);
            record(sink, format!("Alg 1 crashed={label}"), n, k, report);
        }
    }

    // Algorithm 2, every single-crash pattern (b = 1).
    {
        let (n, k, b) = (6usize, 3usize, 1usize);
        let reports = par::run_indexed(k, move |v| {
            let config = ExploreConfig {
                max_schedules: budget,
                ..ExploreConfig::new(k, input(n)).with_crashed(vec![PeerId(v)])
            };
            explore(&config, move |_| CrashMultiDownload::new(n, k, b))
        });
        for (v, report) in reports.iter().enumerate() {
            t.row(vec![
                "Alg 2".into(),
                n.to_string(),
                k.to_string(),
                format!("[{v}]"),
                report.schedules.to_string(),
                report.exhaustive.to_string(),
                verdict(report),
            ]);
            record(sink, format!("Alg 2 crashed=[{v}]"), n, k, report);
        }
    }

    // Committee (fault-free delivery-order check).
    {
        let (n, k, byz) = (4usize, 3usize, 1usize);
        let config = ExploreConfig {
            max_schedules: budget,
            ..ExploreConfig::new(k, input(n))
        };
        let report = explore(&config, move |_| CommitteeDownload::new(n, k, byz));
        t.row(vec![
            "Committee".into(),
            n.to_string(),
            k.to_string(),
            "-".into(),
            report.schedules.to_string(),
            report.exhaustive.to_string(),
            verdict(&report),
        ]);
        record(sink, "Committee".into(), n, k, &report);
    }
    vec![t]
}

fn verdict(report: &dr_sim::explore::ExploreReport) -> String {
    match &report.counterexample {
        None => "PASS".into(),
        Some(ce) => format!("FAIL: {}", ce.violation),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_has_no_failures() {
        for table in super::run() {
            let text = table.to_string();
            assert!(!text.contains("FAIL"), "{text}");
        }
    }
}
