//! E3 — Theorem 2.13 / Lemma 2.11: Algorithm 2 across crash fractions.
//!
//! The central crash-fault claim: optimal `Q = O(n/(k(1−β)))` for *any*
//! `β < 1`. Sweeps `β` at fixed `(n, k)` with all `b` crashes actually
//! occurring (the worst case), and compares the plain protocol against
//! the Theorem 2.13 early-release variant on time. Sweep rows are
//! multi-trial means; the E3c comparison keeps paired same-seed runs
//! (parallelized across `b` values).

use crate::metrics::{
    measure_par, trials, ExperimentParams, ExperimentRecord, Measured, MetricsSink,
};
use crate::par;
use crate::runners::{crash_params, run_crash_multi};
use crate::table::{f, Table};
use dr_core::PeerId;
use dr_protocols::{CrashMultiDownload, MultiCrashMsg};
use dr_sim::{Adversary, Delivery, SimBuilder, View, TICKS_PER_UNIT};
use rand::Rng;

const EXPERIMENT: &str = "crash_scaling";

/// The scenario in which Theorem 2.13's early release pays off: the
/// adversary withholds every stage-2 answer (they are only released when
/// the system reaches quiescence) while stage-1 answers from `slow` peers
/// crawl at maximum latency. The plain protocol must stall in stage 3
/// until quiescence forces the held answers out; the early-release
/// variant unblocks as soon as the slow stage-1 answers resolve its
/// missing peers.
struct HoldStage2 {
    slow: Vec<PeerId>,
}

impl Adversary<MultiCrashMsg> for HoldStage2 {
    fn on_send(
        &mut self,
        _view: &View<'_>,
        from: PeerId,
        _to: PeerId,
        msg: &MultiCrashMsg,
        rng: &mut rand::rngs::StdRng,
    ) -> Delivery {
        match msg {
            MultiCrashMsg::Response2 { .. } => Delivery::Hold,
            MultiCrashMsg::Response1 { .. } if self.slow.contains(&from) => {
                Delivery::After(TICKS_PER_UNIT)
            }
            _ => Delivery::After(rng.gen_range(1..=TICKS_PER_UNIT / 16)),
        }
    }
}

/// Small-scale probe of the E3c scenario used by tests: returns
/// (forced releases plain, forced releases early).
pub fn run_e3c_probe() -> (u64, u64) {
    let (n2, k2, b) = (512usize, 8usize, 2usize);
    let run_with = |early_release: bool| {
        let slow: Vec<PeerId> = (0..b).map(PeerId).collect();
        let sim = SimBuilder::new(crash_params(n2, k2, b, 4096))
            .seed(3)
            .protocol(move |_| {
                let p = CrashMultiDownload::new(n2, k2, b);
                if early_release {
                    p.with_early_release()
                } else {
                    p
                }
            })
            .adversary(HoldStage2 { slow: slow.clone() })
            .build();
        let input = sim.input().clone();
        let report = sim.run().expect("no deadlock");
        report.verify_downloads(&input).expect("exact download");
        report.quiescence_releases
    };
    (run_with(false), run_with(true))
}

/// Runs the Algorithm 2 scaling experiments, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the Algorithm 2 scaling experiments, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let (n, k) = (8192usize, 32usize);
    let mut by_beta = Table::new(
        "E3a — Alg 2: Q vs beta (n = 8192, k = 32, all b crash)",
        &["beta", "b", "Q meas", "Q bound", "ratio", "T", "M"],
    );
    for b in [0usize, 8, 16, 24, 28, 31] {
        let beta = b as f64 / k as f64;
        let m = measure_par(trials, 11 + b as u64, move |seed| {
            run_crash_multi(n, k, b, b, 1024, false, seed)
        });
        let bound = (n as f64 / k as f64) * (1.0 / (1.0 - beta)) + (n as f64 / k as f64) + 1.0;
        by_beta.row(vec![
            f(beta),
            b.to_string(),
            f(m.queries.mean),
            f(bound),
            f(m.queries.mean / bound),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("E3a b={b}"),
            ExperimentParams::nkb(n, k, b).with_a(1024),
            m,
        ));
    }

    let mut by_n = Table::new(
        "E3b — Alg 2: Q vs n (k = 32, beta = 0.5)",
        &["n", "Q meas", "Q bound", "ratio"],
    );
    for exp in 10..=15 {
        let n = 1usize << exp;
        let b = 16usize;
        let m = measure_par(trials, exp as u64, move |seed| {
            run_crash_multi(n, k, b, b, 1024, false, seed)
        });
        let bound = (n as f64 / k as f64) * 2.0 + n as f64 / k as f64 + 1.0;
        by_n.row(vec![
            n.to_string(),
            f(m.queries.mean),
            f(bound),
            f(m.queries.mean / bound),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("E3b n={n}"),
            ExperimentParams::nkb(n, k, b).with_a(1024),
            m,
        ));
    }

    let mut early = Table::new(
        "E3c — Thm 2.13 early release under withheld stage-2 answers (n = 4096, k = 16, b slow peers)",
        &[
            "b (slow)",
            "forced releases plain",
            "forced releases early",
            "T plain",
            "T early",
        ],
    );
    // Each b value is a paired plain/early comparison on the same seed —
    // inherently single-run, so the pairs (not the trials) fan out.
    let bs = [2usize, 4, 8];
    let pairs = par::run_indexed(bs.len(), move |i| {
        let b = bs[i];
        let run_with = |early_release: bool, seed: u64| {
            let (n2, k2) = (4096usize, 16usize);
            let slow: Vec<PeerId> = (0..b).map(PeerId).collect();
            let sim = SimBuilder::new(crash_params(n2, k2, b, 4096))
                .seed(seed)
                .protocol(move |_| {
                    let p = CrashMultiDownload::new(n2, k2, b);
                    if early_release {
                        p.with_early_release()
                    } else {
                        p
                    }
                })
                .adversary(HoldStage2 { slow: slow.clone() })
                .build();
            let input = sim.input().clone();
            let report = sim.run().expect("no deadlock");
            report.verify_downloads(&input).expect("exact download");
            report
        };
        (run_with(false, 50), run_with(true, 50))
    });
    for (b, (plain, early_r)) in bs.iter().zip(&pairs) {
        early.row(vec![
            b.to_string(),
            plain.quiescence_releases.to_string(),
            early_r.quiescence_releases.to_string(),
            f(plain.virtual_time_units),
            f(early_r.virtual_time_units),
        ]);
        for (variant, r) in [("plain", plain), ("early", early_r)] {
            sink.push(ExperimentRecord::new(
                EXPERIMENT,
                format!("E3c b={b} {variant}"),
                ExperimentParams::nkb(4096, 16, *b).with_a(4096),
                Measured::one(r, 0.0),
            ));
        }
    }
    vec![by_beta, by_n, early]
}

#[cfg(test)]
mod tests {
    #[test]
    fn early_release_avoids_forced_releases() {
        let tables = super::run_e3c_probe();
        assert!(
            tables.0 >= tables.1,
            "early release should not need more forced releases"
        );
    }

    #[test]
    fn beta_sweep_tracks_bound() {
        let (n, k, b) = (1024usize, 16usize, 8usize);
        let r = crate::runners::run_crash_multi(n, k, b, b, 1024, false, 1);
        let bound = (n as f64 / k as f64) * 3.5 + 8.0;
        assert!((r.max_nonfaulty_queries as f64) <= bound);
    }
}
