//! E-hot — hot-path performance tracking.
//!
//! Times the word-level bulk fast paths (`SourceHandle::query_range`,
//! `PartialArray::learn_slice`, `PartialArray::merge`) against their
//! per-bit reference loops, plus end-to-end `crash::multi` rows, and
//! records everything through the metrics sink as `BENCH_hotpath.json`
//! so the performance trajectory is tracked from PR 2 onward.
//!
//! Timing lives exclusively in each record's `wall_clock_secs` (for
//! micro rows: the whole fixed-iteration loop, so ns/op is
//! `wall_clock_secs * 1e9 / iters`); the Q/T/M statistics stay
//! deterministic, keeping the harness invariant that `--json` output is
//! bit-identical across runs and thread counts once `wall_clock_secs`
//! is stripped.

use crate::metrics::{
    measure_par, trials, ExperimentParams, ExperimentRecord, Measured, MetricsSink,
};
use crate::runners::run_crash_multi;
use crate::table::{f, Table};
use dr_core::{ArraySource, BitArray, PartialArray, PeerId, SharedSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const EXPERIMENT: &str = "hotpath";

/// Times `op` over `iters` iterations (after a short warmup); returns
/// (nanoseconds per op, total seconds).
fn time_op(mut op: impl FnMut(), iters: u32) -> (f64, f64) {
    for _ in 0..1 + iters / 10 {
        op();
    }
    let started = Instant::now();
    for _ in 0..iters {
        op();
    }
    let elapsed = started.elapsed();
    (
        elapsed.as_nanos() as f64 / f64::from(iters),
        elapsed.as_secs_f64(),
    )
}

/// Runs the hot-path experiments, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the hot-path experiments, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let mut micro = Table::new(
        "E-hot-a — word-level fast paths vs per-bit reference",
        &["op", "n", "ns/op bulk", "ns/op per-bit", "speedup"],
    );
    let iters = 64u32;
    for &n in &[4096usize, 65536] {
        let mut rng = StdRng::seed_from_u64(17);
        let input = BitArray::random(n, &mut rng);
        let shared = SharedSource::new(ArraySource::new(input.clone()), 1);
        let handle = shared.handle(PeerId(0));

        let mut record_pair = |op: &str,
                               (bulk_ns, bulk_secs): (f64, f64),
                               (ref_ns, ref_secs): (f64, f64)| {
            micro.row(vec![
                op.to_string(),
                n.to_string(),
                f(bulk_ns),
                f(ref_ns),
                f(ref_ns / bulk_ns),
            ]);
            for (variant, secs) in [("bulk", bulk_secs), ("per_bit", ref_secs)] {
                sink.push(ExperimentRecord::new(
                    EXPERIMENT,
                    format!("micro {op} {variant} n={n} ({iters} iters timed in wall_clock_secs)"),
                    ExperimentParams::nk(n, 1),
                    Measured::queries_only(&[], secs),
                ));
            }
        };

        record_pair(
            "query_range",
            time_op(
                || {
                    std::hint::black_box(handle.query_range(0..n));
                },
                iters,
            ),
            time_op(
                || {
                    // The pre-fast-path implementation: one metered,
                    // dynamically dispatched single-bit query per index.
                    std::hint::black_box(BitArray::from_fn(n, |i| handle.query(i)));
                },
                iters,
            ),
        );

        record_pair(
            "learn_slice",
            time_op(
                || {
                    let mut p = PartialArray::new(n + 7);
                    p.learn_slice(3, &input);
                    std::hint::black_box(p.unknown_count());
                },
                iters,
            ),
            time_op(
                || {
                    let mut p = PartialArray::new(n + 7);
                    for i in 0..n {
                        p.learn(3 + i, input.get(i));
                    }
                    std::hint::black_box(p.unknown_count());
                },
                iters,
            ),
        );

        let mut left = PartialArray::new(n);
        let mut right = PartialArray::new(n);
        for i in 0..n {
            if i % 2 == 0 {
                left.learn(i, input.get(i));
            } else {
                right.learn(i, input.get(i));
            }
        }
        record_pair(
            "merge",
            time_op(
                || {
                    let mut m = left.clone();
                    m.merge(&right);
                    std::hint::black_box(m.unknown_count());
                },
                iters,
            ),
            time_op(
                || {
                    let mut m = left.clone();
                    for i in 0..n {
                        if let Some(v) = right.get(i) {
                            m.learn(i, v);
                        }
                    }
                    std::hint::black_box(m.unknown_count());
                },
                iters,
            ),
        );
    }

    let trials = trials();
    let mut e2e = Table::new(
        "E-hot-b — end-to-end crash::multi wall clock (all b crash)",
        &["n", "k", "b", "Q mean", "T mean", "M mean", "wall secs"],
    );
    for &(n, k, b) in &[(16384usize, 8usize, 3usize), (65536, 32, 8)] {
        let m = measure_par(trials, 23, move |seed| {
            run_crash_multi(n, k, b, b, 1024, false, seed)
        });
        e2e.row(vec![
            n.to_string(),
            k.to_string(),
            b.to_string(),
            f(m.queries.mean),
            f(m.time_units.mean),
            f(m.messages.mean),
            f(m.wall_clock_secs),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("E2E crash_multi n={n} k={k} b={b}"),
            ExperimentParams::nkb(n, k, b).with_a(1024),
            m,
        ));
    }

    vec![micro, e2e]
}
