//! E5 — Theorem 3.7: the 2-cycle randomized protocol.
//!
//! Sweeps `n` at fixed `(k, b)` against the naive and committee baselines
//! (who wins where, and by how much), and sweeps `b` to show the
//! degradation toward the naive fallback as `β → 1/2` — the paper's
//! three-case parameter analysis in action. Rows are multi-trial means
//! fanned across the worker pool.

use crate::metrics::{measure_par, trials, ExperimentParams, ExperimentRecord, MetricsSink};
use crate::runners::{run_committee, run_naive, run_two_cycle, two_cycle_segmentation, ByzMix};
use crate::table::{f, Table};

const EXPERIMENT: &str = "two_cycle";

/// Runs the 2-cycle experiments, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the 2-cycle experiments, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let (k, b) = (256usize, 32usize);
    let mut by_n = Table::new(
        "E5a — 2-cycle vs baselines: Q vs n (k = 256, b = 32, mixed byz)",
        &[
            "n",
            "segments",
            "Q 2-cycle",
            "Q committee",
            "Q naive",
            "winner",
        ],
    );
    for exp in 12..=17 {
        let n = 1usize << exp;
        let m = measure_par(trials, 30 + exp as u64, move |seed| {
            run_two_cycle(n, k, b, ByzMix::Mixed, seed)
        });
        let committee_q = (n * (2 * b + 1)).div_ceil(k) as f64;
        let naive_q = n as f64;
        let q = m.queries.mean;
        let segments = two_cycle_segmentation(n, k, b)
            .map(|(s, _)| s.count().to_string())
            .unwrap_or_else(|| "naive".into());
        let winner = if q < committee_q.min(naive_q) {
            "2-cycle"
        } else if committee_q < naive_q {
            "committee"
        } else {
            "naive"
        };
        by_n.row(vec![
            n.to_string(),
            segments,
            f(q),
            f(committee_q),
            f(naive_q),
            winner.into(),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("E5a n={n}"),
            ExperimentParams::nkb(n, k, b),
            m,
        ));
    }

    let mut by_b = Table::new(
        "E5b — 2-cycle: Q vs b (n = 2^15, k = 256)",
        &["b", "beta", "plan", "Q meas", "Q naive"],
    );
    let n = 1usize << 15;
    for byz in [0usize, 16, 32, 64, 96, 120, 127] {
        let m = measure_par(trials, 40 + byz as u64, move |seed| {
            run_two_cycle(n, k, byz, ByzMix::Silent, seed)
        });
        let plan = two_cycle_segmentation(n, k, byz)
            .map(|(s, tau)| format!("p={} tau={tau}", s.count()))
            .unwrap_or_else(|| "naive".into());
        by_b.row(vec![
            byz.to_string(),
            f(byz as f64 / k as f64),
            plan,
            f(m.queries.mean),
            n.to_string(),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("E5b b={byz}"),
            ExperimentParams::nkb(n, k, byz),
            m,
        ));
    }

    // Reference committee/naive runs at the E5a sizes use the same silent
    // adversary for fairness; report one comparison row in full.
    let mut fair = Table::new(
        "E5c — protocol head-to-head at n = 2^15, k = 256, b = 32 (silent byz)",
        &["protocol", "Q", "T", "M"],
    );
    {
        let n = 1usize << 15;
        let tc = measure_par(trials, 51, move |seed| {
            run_two_cycle(n, k, b, ByzMix::Silent, seed)
        });
        let cm = measure_par(trials, 52, move |seed| run_committee(n, k, b, b, seed));
        let nv = measure_par(trials, 53, move |seed| run_naive(n, k, seed));
        for (name, m) in [("2-cycle", tc), ("committee", cm), ("naive", nv)] {
            fair.row(vec![
                name.into(),
                f(m.queries.mean),
                f(m.time_units.mean),
                f(m.messages.mean),
            ]);
            sink.push(ExperimentRecord::new(
                EXPERIMENT,
                format!("E5c {name}"),
                ExperimentParams::nkb(n, k, b),
                m,
            ));
        }
    }
    vec![by_n, by_b, fair]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cycle_beats_naive_at_scale() {
        let (n, k, b) = (1usize << 14, 256usize, 32usize);
        let r = run_two_cycle(n, k, b, ByzMix::Silent, 1);
        assert!(r.max_nonfaulty_queries < n as u64);
    }
}
