//! E2 — Theorem 2.3: Algorithm 1 query complexity scales as `O(n/k)`.
//!
//! Sweeps `n` at fixed `k` with an adversarial single crash and checks the
//! measured `Q` against the `n/k + n/(k(k−1))` bound; sweeps `k` at fixed
//! `n` to show the `1/k` shape. Each row is a multi-trial mean fanned
//! across the worker pool.

use crate::metrics::{measure_par, trials, ExperimentParams, ExperimentRecord, MetricsSink};
use crate::runners::run_single_crash;
use crate::table::{f, Table};
use dr_core::PeerId;

const EXPERIMENT: &str = "crash_single";

/// Runs the Algorithm 1 scaling experiment, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the Algorithm 1 scaling experiment, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let mut by_n = Table::new(
        "E2a — Alg 1 (one crash): Q vs n (k = 16)",
        &["n", "Q meas", "Q bound", "ratio", "T", "M"],
    );
    let k = 16usize;
    for exp in 10..=14 {
        let n = 1usize << exp;
        let m = measure_par(trials, exp as u64, move |seed| {
            run_single_crash(n, k, seed, Some(PeerId(3)))
        });
        let bound = n / k + n / (k * (k - 1)) + 2;
        by_n.row(vec![
            n.to_string(),
            f(m.queries.mean),
            bound.to_string(),
            f(m.queries.mean / bound as f64),
            f(m.time_units.mean),
            f(m.messages.mean),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("E2a n={n}"),
            ExperimentParams::nkb(n, k, 1),
            m,
        ));
    }

    let mut by_k = Table::new(
        "E2b — Alg 1 (one crash): Q vs k (n = 8192)",
        &["k", "Q meas", "Q bound", "ratio"],
    );
    let n = 8192usize;
    for k in [4usize, 8, 16, 32, 64] {
        let m = measure_par(trials, k as u64, move |seed| {
            run_single_crash(n, k, seed, Some(PeerId(1)))
        });
        let bound = n / k + n / (k * (k - 1)) + 2;
        by_k.row(vec![
            k.to_string(),
            f(m.queries.mean),
            bound.to_string(),
            f(m.queries.mean / bound as f64),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("E2b k={k}"),
            ExperimentParams::nkb(n, k, 1),
            m,
        ));
    }
    vec![by_n, by_k]
}

#[cfg(test)]
mod tests {
    #[test]
    fn rows_track_bound() {
        // Smoke-scale version of the experiment: Q never exceeds the bound.
        let r = crate::runners::run_single_crash(512, 8, 1, Some(dr_core::PeerId(0)));
        let bound = 512 / 8 + 512 / (8 * 7) + 2;
        assert!(r.max_nonfaulty_queries <= bound as u64);
    }
}
