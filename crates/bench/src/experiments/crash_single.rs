//! E2 — Theorem 2.3: Algorithm 1 query complexity scales as `O(n/k)`.
//!
//! Sweeps `n` at fixed `k` with an adversarial single crash and checks the
//! measured `Q` against the `n/k + n/(k(k−1))` bound; sweeps `k` at fixed
//! `n` to show the `1/k` shape.

use crate::runners::run_single_crash;
use crate::table::{f, Table};
use dr_core::PeerId;

/// Runs the Algorithm 1 scaling experiment.
pub fn run() -> Vec<Table> {
    let mut by_n = Table::new(
        "E2a — Alg 1 (one crash): Q vs n (k = 16)",
        &["n", "Q meas", "Q bound", "ratio", "T", "M"],
    );
    let k = 16usize;
    for exp in 10..=14 {
        let n = 1usize << exp;
        let r = run_single_crash(n, k, exp as u64, Some(PeerId(3)));
        let bound = n / k + n / (k * (k - 1)) + 2;
        by_n.row(vec![
            n.to_string(),
            r.max_nonfaulty_queries.to_string(),
            bound.to_string(),
            f(r.max_nonfaulty_queries as f64 / bound as f64),
            f(r.virtual_time_units),
            r.messages_sent.to_string(),
        ]);
    }

    let mut by_k = Table::new(
        "E2b — Alg 1 (one crash): Q vs k (n = 8192)",
        &["k", "Q meas", "Q bound", "ratio"],
    );
    let n = 8192usize;
    for k in [4usize, 8, 16, 32, 64] {
        let r = run_single_crash(n, k, k as u64, Some(PeerId(1)));
        let bound = n / k + n / (k * (k - 1)) + 2;
        by_k.row(vec![
            k.to_string(),
            r.max_nonfaulty_queries.to_string(),
            bound.to_string(),
            f(r.max_nonfaulty_queries as f64 / bound as f64),
        ]);
    }
    vec![by_n, by_k]
}

#[cfg(test)]
mod tests {
    #[test]
    fn rows_track_bound() {
        // Smoke-scale version of the experiment: Q never exceeds the bound.
        let r = crate::runners::run_single_crash(512, 8, 1, Some(dr_core::PeerId(0)));
        let bound = 512 / 8 + 512 / (8 * 7) + 2;
        assert!(r.max_nonfaulty_queries <= bound as u64);
    }
}
