//! E11 — Ablation: asynchrony's price.
//!
//! The paper's headline is that Download — unlike consensus — needs no
//! synchrony at all. This ablation quantifies what asynchrony costs in
//! practice: each protocol under a lockstep schedule (all latencies
//! maximal and equal — the synchronous limit) versus the adversarial
//! asynchronous schedule. Queries are shape-identical; only time
//! stretches.

use crate::runners::crash_params;
use crate::table::{f, Table};
use dr_core::PeerId;
use dr_protocols::CrashMultiDownload;
use dr_sim::{CrashPlan, FixedDelay, RunReport, SimBuilder, StandardAdversary, TICKS_PER_UNIT, UniformDelay};

fn run_mode(n: usize, k: usize, b: usize, lockstep: bool, seed: u64) -> RunReport {
    let plan = CrashPlan::before_event((0..b).map(PeerId), 1);
    let adversary = if lockstep {
        StandardAdversary::new(FixedDelay(TICKS_PER_UNIT), plan).simultaneous_start()
    } else {
        StandardAdversary::new(UniformDelay::new(), plan)
    };
    let sim = SimBuilder::new(crash_params(n, k, b, 1024))
        .seed(seed)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(adversary)
        .build();
    let input = sim.input().clone();
    let report = sim.run().expect("no deadlock");
    report.verify_downloads(&input).expect("exact download");
    report
}

/// Runs the synchrony ablation.
pub fn run() -> Vec<Table> {
    let (n, k) = (4096usize, 16usize);
    let mut t = Table::new(
        "E11 — Alg 2: lockstep (synchronous limit) vs adversarial async (n = 4096, k = 16)",
        &["beta", "Q sync", "Q async", "T sync", "T async"],
    );
    for b in [0usize, 4, 8, 12] {
        let sync = run_mode(n, k, b, true, 200 + b as u64);
        let async_ = run_mode(n, k, b, false, 200 + b as u64);
        t.row(vec![
            f(b as f64 / k as f64),
            sync.max_nonfaulty_queries.to_string(),
            async_.max_nonfaulty_queries.to_string(),
            f(sync.virtual_time_units),
            f(async_.virtual_time_units),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_verify_and_stay_bounded() {
        let sync = run_mode(512, 8, 4, true, 1);
        let async_ = run_mode(512, 8, 4, false, 1);
        let bound = ((512 / 8) * 3 + 16) as u64;
        assert!(sync.max_nonfaulty_queries <= bound);
        assert!(async_.max_nonfaulty_queries <= bound);
    }
}
