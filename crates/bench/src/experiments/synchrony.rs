//! E11 — Ablation: asynchrony's price.
//!
//! The paper's headline is that Download — unlike consensus — needs no
//! synchrony at all. This ablation quantifies what asynchrony costs in
//! practice: each protocol under a lockstep schedule (all latencies
//! maximal and equal — the synchronous limit) versus the adversarial
//! asynchronous schedule. Queries are shape-identical; only time
//! stretches. Both modes measure the same trial seeds, fanned across
//! the worker pool.

use crate::metrics::{measure_par, trials, ExperimentParams, ExperimentRecord, MetricsSink};
use crate::runners::crash_params;
use crate::table::{f, Table};
use dr_core::PeerId;
use dr_protocols::CrashMultiDownload;
use dr_sim::{
    CrashPlan, FixedDelay, RunReport, SimBuilder, StandardAdversary, UniformDelay, TICKS_PER_UNIT,
};

const EXPERIMENT: &str = "synchrony";

fn run_mode(n: usize, k: usize, b: usize, lockstep: bool, seed: u64) -> RunReport {
    let plan = CrashPlan::before_event((0..b).map(PeerId), 1);
    let adversary = if lockstep {
        StandardAdversary::new(FixedDelay(TICKS_PER_UNIT), plan).simultaneous_start()
    } else {
        StandardAdversary::new(UniformDelay::new(), plan)
    };
    let sim = SimBuilder::new(crash_params(n, k, b, 1024))
        .seed(seed)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(adversary)
        .build();
    let input = sim.input().clone();
    let report = sim.run().expect("no deadlock");
    report.verify_downloads(&input).expect("exact download");
    report
}

/// Runs the synchrony ablation, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the synchrony ablation, recording per-mode metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let (n, k) = (4096usize, 16usize);
    let mut t = Table::new(
        "E11 — Alg 2: lockstep (synchronous limit) vs adversarial async (n = 4096, k = 16)",
        &["beta", "Q sync", "Q async", "T sync", "T async"],
    );
    for b in [0usize, 4, 8, 12] {
        // Both modes run the same trial seeds, keeping the comparison
        // paired like the original single-seed version.
        let sync = measure_par(trials, 200 + b as u64, move |seed| {
            run_mode(n, k, b, true, seed)
        });
        let async_ = measure_par(trials, 200 + b as u64, move |seed| {
            run_mode(n, k, b, false, seed)
        });
        t.row(vec![
            f(b as f64 / k as f64),
            f(sync.queries.mean),
            f(async_.queries.mean),
            f(sync.time_units.mean),
            f(async_.time_units.mean),
        ]);
        for (mode, m) in [("sync", sync), ("async", async_)] {
            sink.push(ExperimentRecord::new(
                EXPERIMENT,
                format!("b={b} {mode}"),
                ExperimentParams::nkb(n, k, b).with_a(1024),
                m,
            ));
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_verify_and_stay_bounded() {
        let sync = run_mode(512, 8, 4, true, 1);
        let async_ = run_mode(512, 8, 4, false, 1);
        let bound = ((512 / 8) * 3 + 16) as u64;
        assert!(sync.max_nonfaulty_queries <= bound);
        assert!(async_.max_nonfaulty_queries <= bound);
    }
}
