//! E-suite — whole-workload wall clock on the unified execution plane.
//!
//! Times the complete reproduction workload end to end, as two units:
//!
//! * **experiments** — the twelve paper experiments (everything in
//!   [`super::run_all_metered`] except the perf trackers `hotpath` and
//!   `sim_scaling`, which time themselves), run back to back exactly as
//!   `dr experiments` would;
//! * **chaos** — the default fault-injection campaign, 56 cases × 18
//!   seeds = 1008 runs (see [`crate::chaos::default_cases`]).
//!
//! Each unit runs at plane thread count 1 and, when the machine has
//! more than one core, at `ncpu` (with the chaos sweep additionally
//! running its parallel-eligible cases under `PumpMode::parallel(ncpu,
//! ncpu)`). Every row's label records the *honest*
//! `available_parallelism` of the machine that produced it — on a
//! single-core box the sweep collapses to one thread count and no
//! speedup is claimed. Timing lives exclusively in `wall_clock_secs`;
//! all simulation results are seed-determined, and the chaos sweep
//! gates on zero invariant violations.
//!
//! Set `DR_SUITE_SMOKE=1` (the CI smoke job does) to shrink the trial
//! count and the chaos campaign to CI-affordable sizes.

use crate::chaos::{run_campaign, Campaign};
use crate::metrics::{
    set_trials, trials, ExperimentParams, ExperimentRecord, Measured, MetricsSink,
};
use crate::par;
use crate::runners::PumpMode;
use crate::table::{f, Table};
use std::time::Instant;

const EXPERIMENT: &str = "suite";

/// Fixed base seed of the timed chaos campaign (same default as
/// `dr chaos` / `fig_chaos`).
const CHAOS_SEED: u64 = 0xc0ffee;

fn smoke() -> bool {
    std::env::var("DR_SUITE_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The machine's honest core count; every record carries it.
fn ncpu() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// The twelve paper experiments, back to back, into a scratch sink
/// (this experiment times them; their own records are not re-emitted).
fn run_paper_experiments() {
    let sink = &mut MetricsSink::new();
    super::table1::run_metered(sink);
    super::crash_single::run_metered(sink);
    super::crash_scaling::run_metered(sink);
    super::byz_committee::run_metered(sink);
    super::two_cycle::run_metered(sink);
    super::multi_cycle::run_metered(sink);
    super::lower_bound::run_metered(sink);
    super::oracle::run_metered(sink);
    super::msg_size::run_metered(sink);
    super::strategy_ablation::run_metered(sink);
    super::synchrony::run_metered(sink);
    super::exhaustive::run_metered(sink);
}

/// Runs the suite timing experiment, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the suite timing experiment, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let ncpu = ncpu();
    let chaos_runs_per_case: u64 = if smoke() { 2 } else { 18 };
    let prev_trials = trials();
    if smoke() {
        set_trials(1);
    }
    let trials = trials();

    // Thread counts to sweep: 1, plus ncpu when it differs. Never a
    // fabricated second point on a single-core machine.
    let mut thread_counts = vec![1usize];
    if ncpu > 1 {
        thread_counts.push(ncpu);
    }

    let mut table = Table::new(
        "E-suite — whole-workload wall clock on the execution plane",
        &[
            "workload",
            "threads",
            "ncpu",
            "size",
            "wall secs",
            "speedup vs 1",
        ],
    );

    let prev_threads = par::thread_count();
    let mut baseline: [f64; 2] = [0.0, 0.0];
    for &t in &thread_counts {
        par::set_threads(t);

        let started = Instant::now();
        run_paper_experiments();
        let exp_secs = started.elapsed().as_secs_f64();

        let mut campaign = Campaign::new(chaos_runs_per_case, CHAOS_SEED);
        campaign.pump = if t > 1 {
            PumpMode::parallel(t, t)
        } else {
            PumpMode::serial()
        };
        let chaos_runs = campaign.cases.len() * chaos_runs_per_case as usize;
        let started = Instant::now();
        let report = run_campaign(&campaign);
        let chaos_secs = started.elapsed().as_secs_f64();
        assert!(
            report.violations.is_empty(),
            "chaos campaign found {} violation(s) during suite timing",
            report.violations.len()
        );

        if t == 1 {
            baseline = [exp_secs, chaos_secs];
        }
        for (i, (workload, size, secs)) in [
            (
                "experiments",
                format!("12 experiments x {trials} trials"),
                exp_secs,
            ),
            ("chaos", format!("{chaos_runs} runs"), chaos_secs),
        ]
        .into_iter()
        .enumerate()
        {
            table.row(vec![
                workload.to_string(),
                t.to_string(),
                ncpu.to_string(),
                size.clone(),
                f(secs),
                f(baseline[i] / secs),
            ]);
            sink.push(ExperimentRecord::new(
                EXPERIMENT,
                format!("{workload} threads={t} ncpu={ncpu} {size} (timed in wall_clock_secs)"),
                ExperimentParams::nk(0, t),
                Measured::queries_only(&[], secs),
            ));
        }
    }
    par::set_threads(prev_threads);
    set_trials(prev_trials);

    vec![table]
}
