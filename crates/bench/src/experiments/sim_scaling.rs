//! E-scale — simulator hot-loop scaling (events/sec and memory proxy).
//!
//! Two families of rows, recorded as `BENCH_sim_scaling.json`:
//!
//! * **Pump rows** price the hot-loop overhaul itself: the pre-overhaul
//!   shape (inline payloads, deep per-recipient copies, O(k) stop scan)
//!   against the current shape (slab slots, shared-buffer clones,
//!   counter stop check) on the committee broadcast pattern — see
//!   [`crate::pump`]. The speedup column is the events/sec ratio; the
//!   acceptance bar is ≥ 5× at the largest grid point.
//! * **Workload rows** run the real simulator end to end (committee and
//!   crash-multi) across a (k, n) grid, reporting events/sec and the
//!   peak-RSS proxy `peak_queue · sizeof(event) + peak_slab · payload
//!   bytes` from the run's peak queue/slab occupancy.
//!
//! Timing lives exclusively in `wall_clock_secs`; everything else in a
//! record (including the event counts and peak occupancies baked into
//! labels) is a pure function of the seed, preserving the harness
//! invariant that `--json` output is bit-identical across runs once
//! `wall_clock_secs` is stripped.
//!
//! Set `DR_SIM_SCALING_SMOKE=1` (the CI smoke job does) to drop the
//! largest grid point of each family and shrink pump rounds.

use crate::metrics::{ExperimentParams, ExperimentRecord, Measured, MetricsSink};
use crate::pump::{pump_events, pump_new, pump_old};
use crate::runners::{run_committee, run_crash_multi};
use crate::table::{f, Table};
use dr_sim::RunReport;
use std::time::Instant;

const EXPERIMENT: &str = "sim_scaling";

/// Bytes a queued event occupies in the current layout: `at: u64` +
/// `seq: u64` + `EventKind` (tag-padded `Deliver { from, to, slot }`,
/// 24 bytes with `PeerId = usize`) = 40.
const EVENT_BYTES: u64 = 40;

fn smoke() -> bool {
    std::env::var("DR_SIM_SCALING_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Pump grid: committee-pattern broadcast storms, (n, k, rounds).
fn pump_grid() -> Vec<(usize, usize, usize)> {
    let mut grid = vec![(1 << 14, 16, 8), (1 << 16, 32, 4)];
    if !smoke() {
        grid.push((1 << 18, 64, 2));
    }
    grid
}

/// Times `op` once after one warmup run, returning (result, seconds).
fn timed<T>(mut op: impl FnMut() -> T) -> (T, f64) {
    std::hint::black_box(op());
    let started = Instant::now();
    let out = op();
    (out, started.elapsed().as_secs_f64())
}

/// Runs the scaling experiment, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the scaling experiment, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let mut pump = Table::new(
        "E-scale-a — hot-loop shape, committee broadcast pattern (old vs new)",
        &["n", "k", "events", "ev/s old", "ev/s new", "speedup"],
    );
    for (n, k, rounds) in pump_grid() {
        let events = pump_events(k, rounds);
        let (old_stats, old_secs) = timed(|| pump_old(n, k, rounds));
        let (new_stats, new_secs) = timed(|| pump_new(n, k, rounds));
        assert_eq!(old_stats, new_stats, "pump shapes diverged at n={n} k={k}");
        let old_rate = events as f64 / old_secs;
        let new_rate = events as f64 / new_secs;
        pump.row(vec![
            n.to_string(),
            k.to_string(),
            events.to_string(),
            f(old_rate),
            f(new_rate),
            f(new_rate / old_rate),
        ]);
        for (variant, secs) in [("old", old_secs), ("new", new_secs)] {
            sink.push(ExperimentRecord::new(
                EXPERIMENT,
                format!(
                    "pump {variant} n={n} k={k} events={events} (events/wall_clock_secs = ev/s)"
                ),
                ExperimentParams::nk(n, k),
                Measured::queries_only(&[], secs),
            ));
        }
    }

    let mut workloads = Table::new(
        "E-scale-b — end-to-end simulator scaling",
        &[
            "workload",
            "n",
            "k",
            "events",
            "ev/s",
            "peak queue",
            "peak slab",
            "rss proxy MiB",
        ],
    );
    let mut workload_row = |sink: &mut MetricsSink,
                            workload: &str,
                            n: usize,
                            k: usize,
                            b: usize,
                            a: usize,
                            (report, secs): (RunReport, f64)| {
        let rate = report.events as f64 / secs;
        // Resident size is dominated by queued events plus live payloads.
        let proxy_bytes =
            report.peak_queue_len * EVENT_BYTES + report.peak_slab_len * (n as u64 / 8);
        workloads.row(vec![
            workload.to_string(),
            n.to_string(),
            k.to_string(),
            report.events.to_string(),
            f(rate),
            report.peak_queue_len.to_string(),
            report.peak_slab_len.to_string(),
            f(proxy_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!(
                "{workload} n={n} k={k} events={} peak_queue={} peak_slab={} (events/wall_clock_secs = ev/s)",
                report.events, report.peak_queue_len, report.peak_slab_len
            ),
            ExperimentParams::nkb(n, k, b).with_a(a),
            Measured::one(&report, secs),
        ));
    };

    let mut committee_grid = vec![(1 << 14, 16usize, 5usize), (1 << 16, 32, 10)];
    if !smoke() {
        committee_grid.push((1 << 18, 64, 21));
    }
    for &(n, k, t) in &committee_grid {
        let m = timed(|| run_committee(n, k, t, t, 11));
        workload_row(sink, "committee", n, k, t, 0, m);
    }

    let mut crash_grid = vec![(1 << 14, 8usize, 3usize), (1 << 16, 32, 8)];
    if !smoke() {
        crash_grid.push((1 << 18, 64, 16));
    }
    for &(n, k, b) in &crash_grid {
        let m = timed(|| run_crash_multi(n, k, b, b, 1024, false, 13));
        workload_row(sink, "crash_multi", n, k, b, 1024, m);
    }

    vec![pump, workloads]
}
