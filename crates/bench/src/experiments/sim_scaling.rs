//! E-scale — simulator hot-loop scaling (events/sec and memory proxy).
//!
//! Four families of rows, recorded as `BENCH_sim_scaling.json`:
//!
//! * **Pump rows** price the hot-loop shapes against each other: the
//!   pre-overhaul shape (inline payloads, deep per-recipient copies,
//!   O(k) stop scan), the current serial shape (slab slots,
//!   shared-buffer clones, counter stop check), and the sharded shape
//!   (per-shard heaps drained through a time-window barrier) on the
//!   committee broadcast pattern — see [`crate::pump`]. The speedup
//!   column is the events/sec ratio; the acceptance bar is ≥ 5× old→new
//!   at the largest grid point.
//! * **Workload rows** run the real simulator end to end (committee and
//!   crash-multi) across a (k, n) grid, reporting events/sec and the
//!   peak-RSS proxy `peak_queue · sizeof(event) + peak_slab · payload
//!   bytes` from the run's peak queue/slab occupancy.
//! * **Race rows** rerun the workload grid serial vs sharded vs
//!   parallel (sharded pump with window dispatch on the execution
//!   plane, [`crate::plane::PlaneExecutor`]) and gate hard on
//!   fingerprint equality — every pump must be an exact behavioral
//!   replica, timed on the same workload. Crash-planned rows time the
//!   degrade-to-serial gate rather than a fan-out.
//! * **Streaming rows** run crash-multi against a generate-on-demand
//!   [`ChunkedSource`](dr_core::ChunkedSource) at `n` up to 2²⁷ bits
//!   (≥ 10⁸) with a fixed 512 KiB resident budget, verifying outputs
//!   blockwise against an independently rebuilt source.
//!
//! Timing lives exclusively in `wall_clock_secs`; everything else in a
//! record (including the event counts and peak occupancies baked into
//! labels) is a pure function of the seed, preserving the harness
//! invariant that `--json` output is bit-identical across runs once
//! `wall_clock_secs` is stripped.
//!
//! Set `DR_SIM_SCALING_SMOKE=1` (the CI smoke job does) to drop the
//! largest grid point of each family and shrink pump rounds.

use crate::metrics::{ExperimentParams, ExperimentRecord, Measured, MetricsSink};
use crate::pump::{pump_events, pump_new, pump_old, pump_sharded};
use crate::runners::{
    run_committee, run_committee_pumped, run_committee_sharded, run_crash_multi,
    run_crash_multi_pumped, run_crash_multi_sharded, run_crash_multi_streaming, PumpMode,
};
use crate::table::{f, Table};
use dr_sim::RunReport;
use std::time::Instant;

const EXPERIMENT: &str = "sim_scaling";

/// Bytes a queued event occupies in the current layout: `at: u64` +
/// `seq: u64` + `EventKind` (tag-padded `Deliver { from, to, slot }`,
/// 24 bytes with `PeerId = usize`) = 40.
const EVENT_BYTES: u64 = 40;

/// Shard count for the sharded-pump microbench rows.
const PUMP_SHARDS: usize = 8;

/// Shard count for the end-to-end serial-vs-sharded race rows.
const WORKLOAD_SHARDS: usize = 8;

/// Window-dispatch thread count for the parallel-pump race rows. This is
/// a configuration knob, not a core count: on machines with fewer cores
/// the measured rate simply reflects that (the recorded `wall_clock_secs`
/// is always the honest elapsed time on the machine that ran it).
const PUMP_THREADS: usize = 4;

/// Streaming-source geometry: 1024-word (8 KiB) chunks, at most 64
/// resident — a 512 KiB budget regardless of `n`.
const CHUNK_WORDS: usize = 1024;

/// See [`CHUNK_WORDS`].
const MAX_RESIDENT: usize = 64;

fn smoke() -> bool {
    std::env::var("DR_SIM_SCALING_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Pump grid: committee-pattern broadcast storms, (n, k, rounds).
fn pump_grid() -> Vec<(usize, usize, usize)> {
    let mut grid = vec![(1 << 14, 16, 8), (1 << 16, 32, 4)];
    if !smoke() {
        grid.push((1 << 18, 64, 2));
    }
    grid
}

/// Times `op` once after one warmup run, returning (result, seconds).
fn timed<T>(mut op: impl FnMut() -> T) -> (T, f64) {
    std::hint::black_box(op());
    let started = Instant::now();
    let out = op();
    (out, started.elapsed().as_secs_f64())
}

/// Runs the scaling experiment, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the scaling experiment, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let mut pump = Table::new(
        "E-scale-a — hot-loop shape, committee broadcast pattern (old vs new vs sharded)",
        &[
            "n",
            "k",
            "events",
            "ev/s old",
            "ev/s new",
            "ev/s sharded",
            "speedup",
            "shard speedup",
        ],
    );
    for (n, k, rounds) in pump_grid() {
        let events = pump_events(k, rounds);
        let (old_stats, old_secs) = timed(|| pump_old(n, k, rounds));
        let (new_stats, new_secs) = timed(|| pump_new(n, k, rounds));
        let (sharded_stats, sharded_secs) = timed(|| pump_sharded(n, k, rounds, PUMP_SHARDS));
        assert_eq!(old_stats, new_stats, "pump shapes diverged at n={n} k={k}");
        assert_eq!(
            new_stats, sharded_stats,
            "sharded pump diverged at n={n} k={k}"
        );
        let old_rate = events as f64 / old_secs;
        let new_rate = events as f64 / new_secs;
        let sharded_rate = events as f64 / sharded_secs;
        pump.row(vec![
            n.to_string(),
            k.to_string(),
            events.to_string(),
            f(old_rate),
            f(new_rate),
            f(sharded_rate),
            f(new_rate / old_rate),
            f(sharded_rate / new_rate),
        ]);
        for (variant, secs) in [
            ("old", old_secs),
            ("new", new_secs),
            ("sharded", sharded_secs),
        ] {
            sink.push(ExperimentRecord::new(
                EXPERIMENT,
                format!(
                    "pump {variant} n={n} k={k} events={events} (events/wall_clock_secs = ev/s)"
                ),
                ExperimentParams::nk(n, k),
                Measured::queries_only(&[], secs),
            ));
        }
    }

    let mut workloads = Table::new(
        "E-scale-b — end-to-end simulator scaling",
        &[
            "workload",
            "n",
            "k",
            "events",
            "ev/s",
            "peak queue",
            "peak slab",
            "rss proxy MiB",
        ],
    );
    let mut workload_row = |sink: &mut MetricsSink,
                            workload: &str,
                            n: usize,
                            k: usize,
                            b: usize,
                            a: usize,
                            (report, secs): (RunReport, f64)| {
        let rate = report.events as f64 / secs;
        // Resident size is dominated by queued events plus live payloads.
        let proxy_bytes =
            report.peak_queue_len * EVENT_BYTES + report.peak_slab_len * (n as u64 / 8);
        workloads.row(vec![
            workload.to_string(),
            n.to_string(),
            k.to_string(),
            report.events.to_string(),
            f(rate),
            report.peak_queue_len.to_string(),
            report.peak_slab_len.to_string(),
            f(proxy_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!(
                "{workload} n={n} k={k} events={} peak_queue={} peak_slab={} (events/wall_clock_secs = ev/s)",
                report.events, report.peak_queue_len, report.peak_slab_len
            ),
            ExperimentParams::nkb(n, k, b).with_a(a),
            Measured::one(&report, secs),
        ));
    };

    let mut committee_grid = vec![(1 << 14, 16usize, 5usize), (1 << 16, 32, 10)];
    if !smoke() {
        committee_grid.push((1 << 18, 64, 21));
    }
    for &(n, k, t) in &committee_grid {
        let m = timed(|| run_committee(n, k, t, t, 11));
        workload_row(sink, "committee", n, k, t, 0, m);
    }

    let mut crash_grid = vec![(1 << 14, 8usize, 3usize), (1 << 16, 32, 8)];
    if !smoke() {
        crash_grid.push((1 << 18, 64, 16));
    }
    for &(n, k, b) in &crash_grid {
        let m = timed(|| run_crash_multi(n, k, b, b, 1024, false, 13));
        workload_row(sink, "crash_multi", n, k, b, 1024, m);
    }

    let mut race = Table::new(
        "E-scale-c — serial vs sharded vs parallel event pump, end to end (fingerprints gated equal)",
        &[
            "workload",
            "n",
            "k",
            "shards",
            "threads",
            "events",
            "ev/s serial",
            "ev/s sharded",
            "ev/s parallel",
            "speedup",
            "par speedup",
        ],
    );
    let mut race_row = |sink: &mut MetricsSink,
                        workload: &str,
                        n: usize,
                        k: usize,
                        b: usize,
                        (serial, serial_secs): (RunReport, f64),
                        (sharded, sharded_secs): (RunReport, f64),
                        (parallel, parallel_secs): (RunReport, f64)| {
        // The hard gate: the sharded and parallel pumps must be exact
        // behavioral replicas of the serial one, not approximations.
        assert_eq!(
            serial.fingerprint(),
            sharded.fingerprint(),
            "sharded pump diverged from serial: {workload} n={n} k={k}"
        );
        assert_eq!(
            serial.fingerprint(),
            parallel.fingerprint(),
            "parallel pump diverged from serial: {workload} n={n} k={k}"
        );
        let serial_rate = serial.events as f64 / serial_secs;
        let sharded_rate = sharded.events as f64 / sharded_secs;
        let parallel_rate = parallel.events as f64 / parallel_secs;
        race.row(vec![
            workload.to_string(),
            n.to_string(),
            k.to_string(),
            WORKLOAD_SHARDS.to_string(),
            PUMP_THREADS.to_string(),
            serial.events.to_string(),
            f(serial_rate),
            f(sharded_rate),
            f(parallel_rate),
            f(sharded_rate / serial_rate),
            f(parallel_rate / serial_rate),
        ]);
        for (variant, report, secs) in [
            ("serial", &serial, serial_secs),
            ("sharded", &sharded, sharded_secs),
            ("parallel", &parallel, parallel_secs),
        ] {
            sink.push(ExperimentRecord::new(
                EXPERIMENT,
                format!(
                    "race {workload} {variant} n={n} k={k} events={} fingerprint={:016x} (events/wall_clock_secs = ev/s)",
                    report.events,
                    report.fingerprint()
                ),
                ExperimentParams::nkb(n, k, b),
                Measured::one(report, secs),
            ));
        }
    };
    let pump_mode = PumpMode::parallel(WORKLOAD_SHARDS, PUMP_THREADS);
    for &(n, k, t) in &committee_grid {
        let serial = timed(|| run_committee_sharded(n, k, t, t, 11, 1));
        let sharded = timed(|| run_committee_sharded(n, k, t, t, 11, WORKLOAD_SHARDS));
        let parallel = timed(|| run_committee_pumped(n, k, t, t, 11, pump_mode));
        race_row(sink, "committee", n, k, t, serial, sharded, parallel);
    }
    // Crash plans make the adversary non-parallel-safe, so the parallel
    // rows here time the *degrade-to-serial* gate: the row shows what the
    // knob costs (nothing but the check) when the run cannot fan out.
    for &(n, k, b) in &crash_grid {
        let serial = timed(|| run_crash_multi_sharded(n, k, b, b, 1024, false, 13, 1));
        let sharded =
            timed(|| run_crash_multi_sharded(n, k, b, b, 1024, false, 13, WORKLOAD_SHARDS));
        let parallel = timed(|| run_crash_multi_pumped(n, k, b, b, 1024, false, 13, pump_mode));
        race_row(sink, "crash_multi", n, k, b, serial, sharded, parallel);
    }

    let mut streaming = Table::new(
        "E-scale-d — streaming source, bounded resident set (crash_multi)",
        &[
            "n bits",
            "k",
            "b",
            "events",
            "ev/s",
            "cache cap",
            "peak resident",
            "chunks generated",
            "resident KiB",
        ],
    );
    // One grid point at n ≥ 10⁸ bits: far beyond what the workload rows
    // materialize, held to a fixed resident budget. Smoke runs keep the
    // path exercised at a size CI can afford.
    let streaming_grid: Vec<(usize, usize, usize)> = if smoke() {
        vec![(1 << 20, 8, 2)]
    } else {
        vec![(1 << 24, 8, 2), (1 << 27, 8, 2)]
    };
    for &(n, k, b) in &streaming_grid {
        let ((report, stats), secs) = timed(|| {
            run_crash_multi_streaming(
                n,
                k,
                b,
                b,
                1 << 16,
                13,
                0xD0_57_AE,
                CHUNK_WORDS,
                MAX_RESIDENT,
                1,
            )
        });
        let resident_bytes = stats.peak_resident as u64 * (CHUNK_WORDS as u64) * 8;
        streaming.row(vec![
            n.to_string(),
            k.to_string(),
            b.to_string(),
            report.events.to_string(),
            f(report.events as f64 / secs),
            MAX_RESIDENT.to_string(),
            stats.peak_resident.to_string(),
            stats.generated.to_string(),
            f(resident_bytes as f64 / 1024.0),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!(
                "streaming crash_multi n={n} k={k} events={} chunks_generated={} peak_resident={} cap={MAX_RESIDENT} (events/wall_clock_secs = ev/s)",
                report.events, stats.generated, stats.peak_resident
            ),
            ExperimentParams::nkb(n, k, b).with_a(1 << 16),
            Measured::one(&report, secs),
        ));
    }

    vec![pump, workloads, race, streaming]
}
