//! E6 — Theorem 3.12: the multi-cycle randomized protocol.
//!
//! Compares the multi-cycle protocol's expected query cost against the
//! 2-cycle protocol across input sizes (the multi-cycle's smaller initial
//! segments pay off as `n` grows) and reports the cycle counts. Trials
//! fan across the worker pool with the same seeds as a serial run.

use crate::metrics::{measure_par, trials, ExperimentParams, ExperimentRecord, MetricsSink};
use crate::runners::{run_multi_cycle, run_two_cycle, ByzMix};
use crate::table::Table;
use dr_protocols::MultiCyclePlan;

const EXPERIMENT: &str = "multi_cycle";

/// Runs the multi-cycle experiments, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the multi-cycle experiments, recording per-row metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let (k, b) = (256usize, 32usize);
    let mut t = Table::new(
        "E6 — multi-cycle vs 2-cycle: mean Q over trials (k = 256, b = 32)",
        &["n", "cycles", "p1", "Q multi", "Q 2-cycle", "Q naive"],
    );
    for exp in [13usize, 15, 17] {
        let n = 1usize << exp;
        let (cycles, p1) = match MultiCyclePlan::choose(n, k, b) {
            MultiCyclePlan::Sampled {
                initial_segments,
                cycles,
                ..
            } => (cycles.to_string(), initial_segments.to_string()),
            MultiCyclePlan::Naive => ("-".into(), "naive".into()),
        };
        let multi = measure_par(trials, 60 + exp as u64, move |s| {
            run_multi_cycle(n, k, b, ByzMix::Mixed, s)
        });
        let two = measure_par(trials, 60 + exp as u64, move |s| {
            run_two_cycle(n, k, b, ByzMix::Mixed, s)
        });
        t.row(vec![
            n.to_string(),
            cycles,
            p1,
            format!("{:.0} ± {:.0}", multi.queries.mean, multi.queries.std),
            format!("{:.0} ± {:.0}", two.queries.mean, two.queries.std),
            n.to_string(),
        ]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("multi-cycle n={n}"),
            ExperimentParams::nkb(n, k, b),
            multi,
        ));
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("2-cycle n={n}"),
            ExperimentParams::nkb(n, k, b),
            two,
        ));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_cycle_stays_below_naive() {
        let (n, k, b) = (1usize << 13, 256usize, 16usize);
        let r = run_multi_cycle(n, k, b, ByzMix::Silent, 3);
        assert!(r.max_nonfaulty_queries < n as u64);
    }
}
