//! E6 — Theorem 3.12: the multi-cycle randomized protocol.
//!
//! Compares the multi-cycle protocol's expected query cost against the
//! 2-cycle protocol across input sizes (the multi-cycle's smaller initial
//! segments pay off as `n` grows) and reports the cycle counts.

use crate::runners::{run_multi_cycle, run_two_cycle, ByzMix};
use crate::stats::Stats;
use crate::table::Table;
use dr_protocols::MultiCyclePlan;

/// Runs the multi-cycle experiments.
pub fn run() -> Vec<Table> {
    let (k, b) = (256usize, 32usize);
    let mut t = Table::new(
        "E6 — multi-cycle vs 2-cycle: mean Q over 3 seeds (k = 256, b = 32)",
        &["n", "cycles", "p1", "Q multi", "Q 2-cycle", "Q naive"],
    );
    for exp in [13usize, 15, 17] {
        let n = 1usize << exp;
        let (cycles, p1) = match MultiCyclePlan::choose(n, k, b) {
            MultiCyclePlan::Sampled {
                initial_segments,
                cycles,
                ..
            } => (cycles.to_string(), initial_segments.to_string()),
            MultiCyclePlan::Naive => ("-".into(), "naive".into()),
        };
        let q_multi = Stats::sample(3, 60 + exp as u64, |s| {
            run_multi_cycle(n, k, b, ByzMix::Mixed, s).max_nonfaulty_queries as f64
        });
        let q_two = Stats::sample(3, 60 + exp as u64, |s| {
            run_two_cycle(n, k, b, ByzMix::Mixed, s).max_nonfaulty_queries as f64
        });
        t.row(vec![
            n.to_string(),
            cycles,
            p1,
            format!("{:.0} ± {:.0}", q_multi.mean, q_multi.std),
            format!("{:.0} ± {:.0}", q_two.mean, q_two.std),
            n.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_cycle_stays_below_naive() {
        let (n, k, b) = (1usize << 13, 256usize, 16usize);
        let r = run_multi_cycle(n, k, b, ByzMix::Silent, 3);
        assert!(r.max_nonfaulty_queries < n as u64);
    }
}
