//! E7 — Theorems 3.1 and 3.2: the Byzantine-majority lower bounds,
//! executed.
//!
//! Part (a): the deterministic indistinguishability attack against every
//! deterministic protocol in the library — each one that queries fewer
//! than `n` bits is defeated; the naive protocol (the only `Q = n` one)
//! survives, exactly the Theorem 3.1 dichotomy.
//!
//! Part (b): the randomized attack of Theorem 3.2 against a sampling
//! protocol forced to keep a per-peer budget of `≈ n/p` queries; the
//! measured violation rate tracks the predicted `1 − q/n` shape as the
//! budget grows.
//!
//! Both parts are collections of independent attack executions, fanned
//! across the worker pool.

use crate::metrics::{ExperimentParams, ExperimentRecord, Measured, MetricsSink};
use crate::par;
use crate::table::{f, Table};
use dr_core::PeerId;
use dr_protocols::lower_bound::{deterministic_attack, randomized_attack, AttackOutcome};
use dr_protocols::{
    BalancedDownload, CommitteeDownload, NaiveDownload, SingleCrashDownload, TwoCycleDownload,
    TwoCyclePlan,
};

const EXPERIMENT: &str = "lower_bound";

/// Runs the lower-bound experiments, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the lower-bound experiments, recording per-attack metrics. The
/// attack harness meters only the target's queries, so records carry
/// query statistics alone.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let mut det = Table::new(
        "E7a — Thm 3.1 attack vs deterministic protocols (n = 256, k = 8)",
        &["protocol", "target Q", "outcome", "flipped bit"],
    );
    let (n, k) = (256usize, 8usize);
    let names = ["naive", "balanced", "Alg 1 (crash-opt)", "committee t=2"];
    let outcomes: Vec<AttackOutcome> = par::run_indexed(names.len(), move |i| match i {
        0 => deterministic_attack(n, k, PeerId(0), |_| NaiveDownload::new(), 1),
        1 => deterministic_attack(n, k, PeerId(0), move |_| BalancedDownload::new(n, k), 2),
        2 => deterministic_attack(n, k, PeerId(0), move |_| SingleCrashDownload::new(n, k), 3),
        _ => deterministic_attack(n, k, PeerId(0), move |_| CommitteeDownload::new(n, k, 2), 4),
    });
    for (name, outcome) in names.iter().zip(outcomes) {
        let (q, verdict, flipped) = match outcome {
            AttackOutcome::FullyQueried { queries } => (queries, "survives (Q = n)", "-".into()),
            AttackOutcome::Violated {
                queries,
                flipped_index,
            } => (queries, "WRONG OUTPUT", flipped_index.to_string()),
            AttackOutcome::NoTermination { flipped_index } => {
                (0, "NO TERMINATION", flipped_index.to_string())
            }
        };
        det.row(vec![(*name).into(), q.to_string(), verdict.into(), flipped]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            format!("E7a {name}: {verdict}"),
            ExperimentParams::nkb(n, k, k - 1),
            Measured::queries_only(&[q as f64], 0.0),
        ));
    }

    let mut rand_t = Table::new(
        "E7b — Thm 3.2 attack vs randomized sampler (n = 512, k = 8, 24 trials)",
        &[
            "segments p",
            "budget ~ n/p",
            "est. P[query i*]",
            "violation rate",
            "predicted",
        ],
    );
    let ps = [2usize, 4, 8];
    let rand_stats = par::run_indexed(ps.len(), move |i| {
        let p = ps[i];
        let (n, k) = (512usize, 8usize);
        let plan = TwoCyclePlan::Sampled {
            segments: p,
            threshold: 1,
        };
        randomized_attack(
            n,
            k,
            PeerId(0),
            move |_| TwoCycleDownload::with_plan(n, k, 0, plan),
            12,
            24,
            70 + p as u64,
        )
    });
    for (p, stats) in ps.iter().zip(&rand_stats) {
        let (n, k) = (512usize, 8usize);
        // The target survives if it sampled the flipped segment itself
        // (prob 1/p) or no claim covered it, triggering the direct-query
        // fallback: violation ≈ (1 − 1/p)·(1 − (1 − 1/p)^(k−1)).
        let coverage = 1.0 - (1.0 - 1.0 / *p as f64).powi(k as i32 - 1);
        rand_t.row(vec![
            p.to_string(),
            (n / p).to_string(),
            f(stats.estimated_query_probability),
            f(stats.violation_rate()),
            f((1.0 - 1.0 / *p as f64) * coverage),
        ]);
    }
    vec![det, rand_t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn deterministic_dichotomy_holds() {
        use super::*;
        let naive = deterministic_attack(64, 4, PeerId(0), |_| NaiveDownload::new(), 1);
        assert!(matches!(naive, AttackOutcome::FullyQueried { .. }));
        let bal = deterministic_attack(64, 4, PeerId(0), |_| BalancedDownload::new(64, 4), 1);
        assert!(matches!(bal, AttackOutcome::Violated { .. }));
    }
}
