//! E10 — Ablation: Byzantine strategies against the 2-cycle protocol.
//!
//! The decision-tree mechanism turns Byzantine interference into extra
//! queries, never wrong outputs — and remarkably few extra queries at
//! that. Since each fake string must be sent by ≥ τ distinct colluders to
//! enter any tree, and each surviving fake costs at most one separating
//! query per receiver, the worst-case inflation is `b/τ` extra queries
//! per peer. This ablation measures each strategy class against that
//! ceiling: silence (withholds coverage), equivocation and noise
//! (below-τ, filtered for free), and τ-coordinated collusion (the only
//! strategy that reaches the trees at all). Trials fan across the pool.

use crate::metrics::{measure_par, trials, ExperimentParams, ExperimentRecord, MetricsSink};
use crate::runners::{average_par, run_two_cycle, ByzMix};
use crate::table::{f, Table};

const EXPERIMENT: &str = "strategy_ablation";

/// Runs the strategy ablation, discarding metrics records.
pub fn run() -> Vec<Table> {
    run_metered(&mut MetricsSink::new())
}

/// Runs the strategy ablation, recording per-strategy metrics.
pub fn run_metered(sink: &mut MetricsSink) -> Vec<Table> {
    let trials = trials();
    let (n, k, b) = (1usize << 15, 256usize, 48usize);
    let tau = crate::runners::two_cycle_segmentation(n, k, b)
        .map(|(_, tau)| tau)
        .unwrap_or(1);
    let mut t = Table::new(
        "E10 — 2-cycle under Byzantine strategies (n = 2^15, k = 256, b = 48; mean over trials)",
        &["strategy", "Q mean", "extra vs none", "ceiling b/tau"],
    );
    let base = average_par(trials, 100, move |s| {
        run_two_cycle(n, k, b, ByzMix::None, s).max_nonfaulty_queries as f64
    });
    for (name, mix) in [
        ("none (budget only)", ByzMix::None),
        ("silent", ByzMix::Silent),
        ("mixed", ByzMix::Mixed),
        ("colluders", ByzMix::Colluders),
    ] {
        let m = measure_par(trials, 100, move |s| run_two_cycle(n, k, b, mix, s));
        let q = m.queries.mean;
        t.row(vec![name.into(), f(q), f(q - base), (b / tau).to_string()]);
        sink.push(ExperimentRecord::new(
            EXPERIMENT,
            name,
            ExperimentParams::nkb(n, k, b),
            m,
        ));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_keep_correctness() {
        // run_two_cycle verifies outputs internally; exercising each mix
        // at a small size is the test.
        let (n, k, b) = (1usize << 13, 128usize, 24usize);
        for mix in [
            ByzMix::None,
            ByzMix::Silent,
            ByzMix::Mixed,
            ByzMix::Colluders,
        ] {
            run_two_cycle(n, k, b, mix, 9);
        }
    }
}
