//! Regenerates the 'byz_committee' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_byz_committee");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::byz_committee::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
