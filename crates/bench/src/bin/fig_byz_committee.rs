//! Regenerates the 'byz_committee' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::byz_committee::run() {
        print!("{table}");
    }
}
