//! Regenerates the 'exhaustive' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::exhaustive::run() {
        print!("{table}");
    }
}
