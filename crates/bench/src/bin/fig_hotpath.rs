//! Regenerates the 'hotpath' performance-tracking tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_hotpath");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::hotpath::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
