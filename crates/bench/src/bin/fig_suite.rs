//! Regenerates the 'suite' whole-workload wall-clock tables: the twelve
//! paper experiments plus the default chaos campaign, timed at plane
//! thread counts 1 and ncpu (see DESIGN.md §4). Set `DR_SUITE_SMOKE=1`
//! for a CI-sized run.

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_suite");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::suite::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
