//! Regenerates the front-door serving benchmark (`BENCH_serve.json`).
//!
//! Usage: `fig_serve [--json <dir>] [--smoke]`
//!
//! `--smoke` runs the reduced CI grid. The gate assertions (warm
//! amortized Q strictly below cold, coalescing observed on overlap,
//! bit-identical responses) run in both modes: a failing gate exits via
//! panic, which is what the `serve-smoke` CI job keys on.

use dr_bench::experiments::serve;
use std::path::PathBuf;

fn main() {
    let mut json_dir: Option<PathBuf> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => usage_exit(2),
            },
            "--smoke" => smoke = true,
            "--help" | "-h" => usage_exit(0),
            _ => {
                eprintln!("unknown argument: {arg}");
                usage_exit(2);
            }
        }
    }

    let grid = if smoke {
        serve::ServeGrid::smoke()
    } else {
        serve::ServeGrid::full()
    };
    let records = serve::run_grid(&grid);
    for table in serve::tables(&records) {
        print!("{table}");
    }
    serve::gate(&records);
    if let Some(dir) = json_dir {
        match serve::write_json(&dir, &records) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write metrics to {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
}

fn usage_exit(code: i32) -> ! {
    eprintln!(
        "usage: fig_serve [--json <dir>] [--smoke]\n\
         \n\
         --json <dir>   write BENCH_serve.json into <dir>\n\
         --smoke        reduced grid for CI smoke runs"
    );
    std::process::exit(code)
}
