//! Regenerates the 'strategy_ablation' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::strategy_ablation::run() {
        print!("{table}");
    }
}
