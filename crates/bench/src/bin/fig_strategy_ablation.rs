//! Regenerates the 'strategy_ablation' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_strategy_ablation");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::strategy_ablation::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
