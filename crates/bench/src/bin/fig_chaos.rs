//! Chaos campaign: randomized fault-injection sweep over every protocol ×
//! adversary configuration, with invariant checks, schedule shrinking, and
//! `chaos_repro_<hash>.json` reproducers for any violation.
//!
//! ```text
//! cargo run --release -p dr-bench --bin fig_chaos -- [--runs-per-case N]
//!     [--seed S] [--out DIR] [--threads N] [--no-shrink] [--replay FILE]
//! ```
//!
//! `--replay FILE` switches to replay mode: the reproducer is loaded,
//! its schedule is played back, and the exit code reports whether the
//! recorded violation reproduced.

use dr_bench::chaos::{load_repro, replay_repro, run_campaign, Campaign};
use dr_bench::par;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    runs_per_case: u64,
    seed: u64,
    out: Option<PathBuf>,
    shrink: bool,
    replay: Option<PathBuf>,
}

const USAGE: &str = "usage: fig_chaos [--runs-per-case N] [--seed S] [--out DIR] \
[--threads N] [--no-shrink] [--replay FILE]";

fn parse_options() -> Options {
    let mut opts = Options {
        runs_per_case: 18,
        seed: 0xc0ffee,
        out: Some(PathBuf::from("chaos_repros")),
        shrink: true,
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs-per-case" => {
                opts.runs_per_case = value(&mut args, "--runs-per-case")
                    .parse()
                    .expect("--runs-per-case: integer")
            }
            "--seed" => opts.seed = value(&mut args, "--seed").parse().expect("--seed: integer"),
            "--out" => opts.out = Some(PathBuf::from(value(&mut args, "--out"))),
            "--threads" => par::set_threads(
                value(&mut args, "--threads")
                    .parse()
                    .expect("--threads: integer"),
            ),
            "--no-shrink" => opts.shrink = false,
            "--replay" => opts.replay = Some(PathBuf::from(value(&mut args, "--replay"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn replay_mode(path: &std::path::Path) -> ExitCode {
    let repro = match load_repro(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} seed={} — recorded violation: {}",
        repro.case, repro.seed, repro.violation
    );
    let outcome = replay_repro(&repro);
    match outcome.violation {
        Some(v) => {
            let fp_ok = outcome.fingerprint == repro.fingerprint;
            println!(
                "reproduced: {v} (fingerprint {})",
                if fp_ok { "matches" } else { "DIFFERS" }
            );
            if fp_ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        None => {
            println!("did NOT reproduce — run completed cleanly");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_options();
    if let Some(path) = &opts.replay {
        return replay_mode(path);
    }
    let mut campaign = Campaign::new(opts.runs_per_case, opts.seed);
    campaign.shrink = opts.shrink;
    campaign.out_dir = opts.out;
    println!(
        "chaos campaign: {} cases x {} runs = {} runs (base seed {:#x})",
        campaign.cases.len(),
        campaign.runs_per_case,
        campaign.cases.len() * campaign.runs_per_case as usize,
        campaign.base_seed
    );
    let started = std::time::Instant::now();
    let report = run_campaign(&campaign);
    println!(
        "{} runs in {:.1?}: {} violation(s)",
        report.total_runs,
        started.elapsed(),
        report.violations.len()
    );
    for v in &report.violations {
        println!(
            "  VIOLATION {} seed={}: {} ({} fault directives, {} holds, {} link directives in shrunk trace)",
            v.repro.case,
            v.repro.seed,
            v.repro.violation,
            v.repro.trace.num_fault_directives(),
            v.repro.trace.num_hold_directives(),
            v.repro.trace.num_link_directives(),
        );
        if let Some(path) = &v.path {
            println!("    repro written to {}", path.display());
        }
    }
    if report.violations.is_empty() {
        println!("all invariants held");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
