//! Regenerates the 'oracle' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::oracle::run() {
        print!("{table}");
    }
}
