//! Regenerates the 'two_cycle' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::two_cycle::run() {
        print!("{table}");
    }
}
