//! Regenerates the 'two_cycle' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_two_cycle");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::two_cycle::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
