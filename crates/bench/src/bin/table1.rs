//! Regenerates the 'table1' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::table1::run() {
        print!("{table}");
    }
}
