//! Regenerates the 'table1' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("table1");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::table1::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
