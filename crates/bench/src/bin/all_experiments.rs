//! Regenerates every table and figure of the paper in one run.
//! Use `cargo run --release -p dr-bench --bin all_experiments`.
//! Pass `--json <dir>` to also write BENCH_<experiment>.json metrics.

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("all_experiments");
    let started = std::time::Instant::now();
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::run_all_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
    eprintln!("\nall experiments done in {:.1?}", started.elapsed());
}
