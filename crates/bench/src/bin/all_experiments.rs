//! Regenerates every table and figure of the paper in one run.
//! Use `cargo run --release -p dr-bench --bin all_experiments`.

fn main() {
    let started = std::time::Instant::now();
    for table in dr_bench::experiments::run_all() {
        print!("{table}");
    }
    eprintln!("\nall experiments done in {:.1?}", started.elapsed());
}
