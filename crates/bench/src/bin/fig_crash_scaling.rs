//! Regenerates the 'crash_scaling' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::crash_scaling::run() {
        print!("{table}");
    }
}
