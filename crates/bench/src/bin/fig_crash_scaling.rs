//! Regenerates the 'crash_scaling' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_crash_scaling");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::crash_scaling::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
