//! Regenerates the 'lower_bound' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_lower_bound");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::lower_bound::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
