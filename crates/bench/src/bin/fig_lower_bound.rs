//! Regenerates the 'lower_bound' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::lower_bound::run() {
        print!("{table}");
    }
}
