//! Regenerates the 'sim_scaling' simulator-throughput tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_sim_scaling");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::sim_scaling::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
