//! Regenerates the 'crash_single' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::crash_single::run() {
        print!("{table}");
    }
}
