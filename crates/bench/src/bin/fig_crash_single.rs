//! Regenerates the 'crash_single' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_crash_single");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::crash_single::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
