//! Regenerates the 'msg_size' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::msg_size::run() {
        print!("{table}");
    }
}
