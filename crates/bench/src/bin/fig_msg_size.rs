//! Regenerates the 'msg_size' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_msg_size");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::msg_size::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
