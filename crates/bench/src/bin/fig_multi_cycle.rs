//! Regenerates the 'multi_cycle' experiment tables (see DESIGN.md E-index).

use dr_bench::cli::BinOptions;
use dr_bench::metrics::MetricsSink;

fn main() {
    let opts = BinOptions::parse("fig_multi_cycle");
    let mut sink = MetricsSink::new();
    for table in dr_bench::experiments::multi_cycle::run_metered(&mut sink) {
        print!("{table}");
    }
    opts.finish(&sink);
}
