//! Regenerates the 'multi_cycle' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::multi_cycle::run() {
        print!("{table}");
    }
}
