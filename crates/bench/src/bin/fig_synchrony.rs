//! Regenerates the 'synchrony' experiment tables (see DESIGN.md E-index).

fn main() {
    for table in dr_bench::experiments::synchrony::run() {
        print!("{table}");
    }
}
