//! Standardized experiment runs: one function per (protocol, scenario),
//! all verifying the Download specification before returning metrics.

use dr_core::{BitArray, FaultModel, ModelParams, PeerId, SegmentId, Segmentation};
use dr_protocols::byz::strategies::{CollusionGroup, Equivocator, RandomNoise};
use dr_protocols::{
    CommitteeDownload, CrashMultiDownload, MultiCycleDownload, NaiveDownload, SingleCrashDownload,
    TwoCycleDownload, TwoCyclePlan,
};
use dr_sim::{CrashPlan, RunReport, SilentAgent, SimBuilder, StandardAdversary, UniformDelay};

use crate::stats::Stats;

/// Mix of Byzantine behaviours injected in the randomized-protocol runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzMix {
    /// No Byzantine peers actually instantiated (budget reserved only).
    None,
    /// All Byzantine peers silent.
    Silent,
    /// Equal parts equivocators, colluders, and random noise.
    Mixed,
    /// All Byzantine peers collude on fake strings in groups.
    Colluders,
}

/// Event-pump configuration for a runner: shard count plus the
/// window-level pump thread count.
///
/// With `threads > 1` the run attaches the shared execution plane
/// ([`crate::plane::PlaneExecutor`]) as its window executor and lowers
/// the parallel-window threshold to 2, so causally-closed windows
/// actually fan out. Whether a window *may* run in parallel is still
/// gated inside the simulator (shards > 1, no trace, adversary
/// parallel-safe); every combination yields bit-identical reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PumpMode {
    /// Event-pump shard count (1 = the serial pump).
    pub shards: usize,
    /// Window-level pump threads (1 = serial dispatch).
    pub threads: usize,
}

impl PumpMode {
    /// The classic serial pump.
    pub fn serial() -> Self {
        PumpMode {
            shards: 1,
            threads: 1,
        }
    }

    /// Sharded pump with serial dispatch.
    pub fn sharded(shards: usize) -> Self {
        PumpMode { shards, threads: 1 }
    }

    /// Sharded pump with parallel window dispatch on the plane.
    pub fn parallel(shards: usize, threads: usize) -> Self {
        PumpMode { shards, threads }
    }

    /// Applies this mode to a builder.
    pub fn apply<M: dr_core::ProtocolMessage>(&self, builder: SimBuilder<M>) -> SimBuilder<M> {
        let builder = builder.shards(self.shards);
        if self.threads > 1 {
            builder
                .pump_executor(std::sync::Arc::new(crate::plane::PlaneExecutor::new(
                    self.threads,
                )))
                .parallel_window_min(2)
        } else {
            builder
        }
    }
}

/// Builds crash-fault parameters.
pub fn crash_params(n: usize, k: usize, b: usize, msg_bits: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .message_bits(msg_bits)
        .build()
        .expect("valid crash params")
}

/// Builds Byzantine-fault parameters.
pub fn byz_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, b)
        .build()
        .expect("valid byz params")
}

fn verified(sim: dr_sim::Simulation<impl dr_core::ProtocolMessage>) -> RunReport {
    let input = sim.input().clone();
    let report = sim.run().expect("run must terminate");
    report
        .verify_downloads(&input)
        .expect("download specification violated");
    report
}

/// Naive protocol run (works under any fault pattern).
pub fn run_naive(n: usize, k: usize, seed: u64) -> RunReport {
    let sim = SimBuilder::new(crash_params(n, k, 0, 1024))
        .seed(seed)
        .protocol(|_| NaiveDownload::new())
        .build();
    verified(sim)
}

/// Algorithm 1 with one adversarial crash (`victim` dies mid-run).
pub fn run_single_crash(n: usize, k: usize, seed: u64, victim: Option<PeerId>) -> RunReport {
    let plan = match victim {
        Some(v) => CrashPlan::before_event([v], seed % 4),
        None => CrashPlan::none(),
    };
    let sim = SimBuilder::new(crash_params(n, k, 1, 1024))
        .seed(seed)
        .protocol(move |_| SingleCrashDownload::new(n, k))
        .adversary(StandardAdversary::new(UniformDelay::new(), plan))
        .build();
    verified(sim)
}

/// Algorithm 2 with `crashes` peers crashed adversarially (budget `b`).
pub fn run_crash_multi(
    n: usize,
    k: usize,
    b: usize,
    crashes: usize,
    msg_bits: usize,
    early_release: bool,
    seed: u64,
) -> RunReport {
    run_crash_multi_sharded(n, k, b, crashes, msg_bits, early_release, seed, 1)
}

/// [`run_crash_multi`] on the sharded event pump; `shards = 1` is the
/// serial pump, and every shard count yields the same fingerprint.
#[allow(clippy::too_many_arguments)]
pub fn run_crash_multi_sharded(
    n: usize,
    k: usize,
    b: usize,
    crashes: usize,
    msg_bits: usize,
    early_release: bool,
    seed: u64,
    shards: usize,
) -> RunReport {
    run_crash_multi_pumped(
        n,
        k,
        b,
        crashes,
        msg_bits,
        early_release,
        seed,
        PumpMode::sharded(shards),
    )
}

/// [`run_crash_multi`] under an arbitrary [`PumpMode`]. Every
/// (shards, threads) combination yields the same fingerprint; with
/// crashes planned the adversary is not parallel-safe, so dispatch
/// degrades to serial automatically.
#[allow(clippy::too_many_arguments)]
pub fn run_crash_multi_pumped(
    n: usize,
    k: usize,
    b: usize,
    crashes: usize,
    msg_bits: usize,
    early_release: bool,
    seed: u64,
    pump: PumpMode,
) -> RunReport {
    assert!(crashes <= b);
    let victims: Vec<PeerId> = (0..crashes).map(PeerId).collect();
    let plan = CrashPlan::before_event(victims, 1 + seed % 3);
    let builder = SimBuilder::new(crash_params(n, k, b, msg_bits))
        .seed(seed)
        .protocol(move |_| {
            let p = CrashMultiDownload::new(n, k, b);
            if early_release {
                p.with_early_release()
            } else {
                p
            }
        })
        .adversary(StandardAdversary::new(UniformDelay::new(), plan));
    verified(pump.apply(builder).build())
}

/// Algorithm 2 against a streaming [`ChunkedSource`] — the source is
/// generated on demand from `source_seed` with at most `max_resident`
/// chunks of `chunk_words` words in memory, so `n` may exceed RAM.
/// Outputs are verified blockwise against an independently rebuilt
/// source (same `(len, seed)` ⇒ same array), and the cache statistics
/// of the run's own source are returned alongside the report.
#[allow(clippy::too_many_arguments)]
pub fn run_crash_multi_streaming(
    n: usize,
    k: usize,
    b: usize,
    crashes: usize,
    msg_bits: usize,
    seed: u64,
    source_seed: u64,
    chunk_words: usize,
    max_resident: usize,
    shards: usize,
) -> (RunReport, dr_core::ChunkStats) {
    assert!(crashes <= b);
    let source = std::sync::Arc::new(dr_core::ChunkedSource::with_geometry(
        n,
        source_seed,
        chunk_words,
        max_resident,
    ));
    let victims: Vec<PeerId> = (0..crashes).map(PeerId).collect();
    let plan = CrashPlan::before_event(victims, 1 + seed % 3);
    let sim = SimBuilder::new(crash_params(n, k, b, msg_bits))
        .seed(seed)
        .shards(shards)
        .streaming_source(source.clone())
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(StandardAdversary::new(UniformDelay::new(), plan))
        .build();
    let report = sim.run().expect("run must terminate");
    let stats = source.stats();
    assert!(
        stats.peak_resident <= max_resident,
        "resident set exceeded its cap: {} > {max_resident}",
        stats.peak_resident
    );
    // Verify against a fresh source with the same (len, seed): the
    // verifier never touches the run's cache, and stays bounded itself.
    let verifier = dr_core::ChunkedSource::with_geometry(n, source_seed, chunk_words, max_resident);
    report
        .verify_downloads_source(&verifier)
        .expect("download specification violated");
    (report, stats)
}

/// Deterministic committee protocol with `silent` of the `t` Byzantine
/// peers instantiated as silent.
pub fn run_committee(n: usize, k: usize, t: usize, silent: usize, seed: u64) -> RunReport {
    run_committee_sharded(n, k, t, silent, seed, 1)
}

/// [`run_committee`] on the sharded event pump; `shards = 1` is the
/// serial pump, and every shard count yields the same fingerprint.
pub fn run_committee_sharded(
    n: usize,
    k: usize,
    t: usize,
    silent: usize,
    seed: u64,
    shards: usize,
) -> RunReport {
    run_committee_pumped(n, k, t, silent, seed, PumpMode::sharded(shards))
}

/// [`run_committee`] under an arbitrary [`PumpMode`]; every
/// (shards, threads) combination yields the same fingerprint.
pub fn run_committee_pumped(
    n: usize,
    k: usize,
    t: usize,
    silent: usize,
    seed: u64,
    pump: PumpMode,
) -> RunReport {
    assert!(silent <= t);
    let mut builder = pump.apply(
        SimBuilder::new(byz_params(n, k, t))
            .seed(seed)
            .protocol(move |_| CommitteeDownload::new(n, k, t)),
    );
    for i in 0..silent {
        builder = builder.byzantine(PeerId(i), SilentAgent::new());
    }
    verified(builder.build())
}

fn apply_mix<M, FEq, FCol, FNoise>(
    mut builder: SimBuilder<M>,
    b: usize,
    mix: ByzMix,
    eq: FEq,
    col: FCol,
    noise: FNoise,
) -> SimBuilder<M>
where
    M: dr_core::ProtocolMessage,
    FEq: Fn(usize) -> Box<dyn dr_sim::Agent<M>>,
    FCol: Fn(usize) -> Box<dyn dr_sim::Agent<M>>,
    FNoise: Fn(usize) -> Box<dyn dr_sim::Agent<M>>,
{
    match mix {
        ByzMix::None => builder,
        ByzMix::Silent => {
            for i in 0..b {
                builder = builder.byzantine(PeerId(i), SilentAgent::new());
            }
            builder
        }
        ByzMix::Mixed => {
            for i in 0..b {
                builder = match i % 3 {
                    0 => builder.byzantine(PeerId(i), eq(i)),
                    1 => builder.byzantine(PeerId(i), col(i)),
                    _ => builder.byzantine(PeerId(i), noise(i)),
                };
            }
            builder
        }
        ByzMix::Colluders => {
            for i in 0..b {
                builder = builder.byzantine(PeerId(i), col(i));
            }
            builder
        }
    }
}

/// Returns the segmentation the 2-cycle protocol will use, if sampled.
pub fn two_cycle_segmentation(n: usize, k: usize, b: usize) -> Option<(Segmentation, usize)> {
    match TwoCyclePlan::choose(n, k, b) {
        TwoCyclePlan::Sampled {
            segments,
            threshold,
        } => Some((Segmentation::new(n, segments), threshold)),
        TwoCyclePlan::Naive => None,
    }
}

/// 2-cycle randomized protocol run under a Byzantine mix.
pub fn run_two_cycle(n: usize, k: usize, b: usize, mix: ByzMix, seed: u64) -> RunReport {
    run_two_cycle_pumped(n, k, b, mix, seed, PumpMode::serial())
}

/// [`run_two_cycle`] under an arbitrary [`PumpMode`]; every
/// (shards, threads) combination yields the same fingerprint.
pub fn run_two_cycle_pumped(
    n: usize,
    k: usize,
    b: usize,
    mix: ByzMix,
    seed: u64,
    pump: PumpMode,
) -> RunReport {
    let builder = pump.apply(
        SimBuilder::new(byz_params(n, k, b))
            .seed(seed)
            .protocol(move |_| TwoCycleDownload::new(n, k, b)),
    );
    let builder = match two_cycle_segmentation(n, k, b) {
        // Colluders form groups of τ consecutive IDs sharing one target
        // segment and one fake string, so each group crosses the
        // frequency threshold (the only strategy that can).
        Some((seg, tau)) => apply_mix(
            builder,
            b,
            mix,
            |i| Box::new(Equivocator::new(seg, SegmentId(i % seg.count()))),
            move |i| {
                let group = i / tau.max(1);
                Box::new(CollusionGroup::new(
                    seg,
                    SegmentId(group % seg.count()),
                    group as u64,
                ))
            },
            |_| Box::new(RandomNoise::new(seg)),
        ),
        None => apply_mix(
            builder,
            b,
            mix,
            |_| Box::new(SilentAgent::new()),
            |_| Box::new(SilentAgent::new()),
            |_| Box::new(SilentAgent::new()),
        ),
    };
    verified(builder.build())
}

/// Multi-cycle randomized protocol run under a Byzantine mix (colluders
/// and noise target the cycle-1 segmentation).
pub fn run_multi_cycle(n: usize, k: usize, b: usize, mix: ByzMix, seed: u64) -> RunReport {
    use dr_protocols::MultiCyclePlan;
    let builder = SimBuilder::new(byz_params(n, k, b))
        .seed(seed)
        .protocol(move |_| MultiCycleDownload::new(n, k, b));
    let builder = match MultiCyclePlan::choose(n, k, b) {
        MultiCyclePlan::Sampled {
            initial_segments,
            threshold,
            ..
        } => {
            let seg = Segmentation::new(n, initial_segments);
            apply_mix(
                builder,
                b,
                mix,
                |i| Box::new(Equivocator::new(seg, SegmentId(i % seg.count()))),
                move |i| {
                    let group = i / threshold.max(1);
                    Box::new(CollusionGroup::new(
                        seg,
                        SegmentId(group % seg.count()),
                        group as u64,
                    ))
                },
                |_| Box::new(RandomNoise::new(seg)),
            )
        }
        MultiCyclePlan::Naive => apply_mix(
            builder,
            b,
            mix,
            |_| Box::new(SilentAgent::new()),
            |_| Box::new(SilentAgent::new()),
            |_| Box::new(SilentAgent::new()),
        ),
    };
    verified(builder.build())
}

/// Mean of a sample (delegates to [`Stats::of`]).
pub fn mean(xs: &[f64]) -> f64 {
    Stats::of(xs).mean
}

/// Convenience: repeats a run over `trials` seeds and averages a metric
/// (delegates to [`Stats::sample`]).
pub fn average<R: FnMut(u64) -> f64>(trials: u64, base_seed: u64, run: R) -> f64 {
    Stats::sample(trials, base_seed, run).mean
}

/// Parallel [`average`]: fans trials across the worker pool via
/// [`Stats::sample_par`]. Seeds and aggregation order match the serial
/// path, so the result is bit-identical for any thread count.
pub fn average_par<R>(trials: u64, base_seed: u64, run: R) -> f64
where
    R: Fn(u64) -> f64 + Send + Sync + 'static,
{
    Stats::sample_par(trials, base_seed, run).mean
}

/// The all-zeros input convenience used by lower-bound experiments.
pub fn zeros(n: usize) -> BitArray {
    BitArray::zeros(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_runners_produce_verified_reports() {
        run_naive(64, 4, 1);
        run_single_crash(60, 4, 2, Some(PeerId(1)));
        run_crash_multi(128, 8, 4, 3, 1024, false, 3);
        run_committee(48, 7, 2, 2, 4);
        run_two_cycle(4096, 96, 12, ByzMix::Mixed, 5);
        run_multi_cycle(4096, 96, 8, ByzMix::Silent, 6);
    }

    #[test]
    fn sharded_runners_match_serial_fingerprints() {
        let serial = run_committee(48, 7, 2, 2, 4);
        let sharded = run_committee_sharded(48, 7, 2, 2, 4, 3);
        assert_eq!(serial.fingerprint(), sharded.fingerprint());
        let serial = run_crash_multi(128, 8, 4, 3, 1024, false, 3);
        let sharded = run_crash_multi_sharded(128, 8, 4, 3, 1024, false, 3, 5);
        assert_eq!(serial.fingerprint(), sharded.fingerprint());
    }

    #[test]
    fn streaming_runner_verifies_and_stays_bounded() {
        // 16 chunks of 256 bits with a 4-chunk cache: plenty of eviction
        // and regeneration traffic on the way to a verified download.
        let (report, stats) = run_crash_multi_streaming(4096, 8, 2, 2, 1024, 3, 99, 4, 4, 2);
        assert!(stats.peak_resident <= 4);
        assert!(stats.evicted > 0, "cache never cycled: {stats:?}");
        assert!(report.events > 0);
    }

    #[test]
    fn average_averages() {
        assert_eq!(average(4, 0, |s| s as f64), 1.5);
    }
}
