//! Aligned console tables for experiment output.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with three significant decimals.
pub fn f(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
