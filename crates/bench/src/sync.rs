//! Synchronization facade for the execution plane.
//!
//! Everything in `plane::core` (and anything else whose interleavings we
//! want model-checked) constructs its primitives through this module. With
//! the default feature set these are exactly `std::sync`; under the
//! `loom-model` feature they swap to the vendored `loom` model checker,
//! whose primitives behave like `std` outside `loom::model` and become
//! scheduler yield points inside it. That single switch is what lets
//! `tests/loom_plane.rs` exhaustively interleave the injector/parking/help
//! protocol without a second copy of the code.
//!
//! The `atomic-ordering` and `sync-primitive-outside-facade` lints key off
//! this file: raw primitive construction anywhere else needs a justified
//! allow, so the set of unchecked synchronization sites stays enumerable.

#[cfg(feature = "loom-model")]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "loom-model"))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};
