//! Back-compat facade over the unified execution plane.
//!
//! Historically this module owned its own scoped-thread pool for trial
//! fan-out. That pool is gone: trial jobs and intra-trial window jobs
//! now share the single work-stealing pool in [`crate::plane`], and this
//! module just re-exports its surface so existing callers (and the
//! `DR_BENCH_THREADS` contract) keep working unchanged.

pub use crate::plane::{run_indexed, set_threads, thread_count, THREADS_ENV};
