//! Scoped worker pool for fanning independent trials across cores.
//!
//! Trials are claimed from a shared atomic counter and every result is
//! returned **in trial-index order**, so aggregation downstream is
//! independent of which worker ran which trial — parallel runs produce
//! bit-identical statistics to serial ones.
//!
//! The worker count resolves, in priority order: [`set_threads`] (the
//! CLI `--threads` flag), the `DR_BENCH_THREADS` environment variable,
//! then [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override set by [`set_threads`]; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Name of the environment variable consulted by [`thread_count`].
pub const THREADS_ENV: &str = "DR_BENCH_THREADS";

/// Overrides the worker count for the whole process (e.g. from a
/// `--threads` CLI flag). Passing 0 clears the override.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Number of workers trial fan-outs will use.
pub fn thread_count() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0), f(1), …, f(count − 1)` across the worker pool and returns
/// the results ordered by index.
///
/// Workers claim indices from a shared counter, so scheduling is dynamic
/// (a slow trial does not hold up the queue), but the returned `Vec` is
/// always `[f(0), f(1), …]` regardless of the thread count — including
/// `thread_count() == 1`, which runs inline with no thread overhead.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = thread_count().min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial worker panicked"))
            .collect()
    });
    let mut all: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        set_threads(4);
        let got = run_indexed(37, |i| i * i);
        set_threads(0);
        let want: Vec<usize> = (0..37).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_thread_runs_inline() {
        set_threads(1);
        let got = run_indexed(5, |i| i + 1);
        set_threads(0);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_count_yields_empty() {
        assert_eq!(run_indexed(0, |i| i), Vec::<usize>::new());
    }
}
