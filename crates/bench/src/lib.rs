//! Experiment harness reproducing the paper's evaluation artifacts.
//!
//! The paper is a theory paper: its artifacts are Table 1 (the complexity
//! comparison) and the per-theorem bounds. Each experiment here
//! regenerates one of them empirically — see `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured records.
//! Run all of them with `cargo run --release -p dr-bench --bin
//! all_experiments`, or individually via the `fig_*` / `table1` binaries.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod cli;
pub mod experiments;
pub mod metrics;
pub mod par;
pub mod plane;
pub mod pump;
pub mod runners;
pub mod stats;
pub mod sync;
pub mod table;

pub use metrics::{ExperimentParams, ExperimentRecord, Measured, MetricsSink};
pub use stats::Stats;
pub use table::{f, Table};
