//! Microbenchmarks of the substrate: bit arrays, frequency tables, and
//! the simulator's event loop overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_core::{BitArray, PartialArray, PeerId, SegmentId};
use dr_protocols::FrequencyTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bits(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = BitArray::random(1 << 16, &mut rng);
    let b = BitArray::random(1 << 16, &mut rng);
    c.bench_function("bitarray_first_difference_64k", |bench| {
        bench.iter(|| a.first_difference(&b));
    });
    c.bench_function("bitarray_slice_4k_of_64k", |bench| {
        bench.iter(|| a.slice(1000..1000 + 4096));
    });
    c.bench_function("partial_array_learn_4k", |bench| {
        bench.iter(|| {
            let mut p = PartialArray::new(4096);
            for i in 0..4096 {
                p.learn(i, i % 2 == 0);
            }
            p.unknown_count()
        });
    });
}

fn bench_frequency_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("frequency_table_record");
    for &senders in &[64usize, 256] {
        let mut rng = StdRng::seed_from_u64(2);
        let strings: Vec<BitArray> = (0..senders)
            .map(|_| BitArray::random(64, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(senders), &strings, |b, s| {
            b.iter(|| {
                let mut table = FrequencyTable::new();
                for (i, string) in s.iter().enumerate() {
                    table.record(PeerId(i), SegmentId(i % 8), string.clone());
                }
                table.frequent(SegmentId(0), 2).len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bits, bench_frequency_table);
criterion_main!(benches);
