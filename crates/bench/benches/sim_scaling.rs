//! Simulator hot-loop scaling benchmarks.
//!
//! `pump/*` prices the hot-loop overhaul in isolation: the pre-overhaul
//! event-pump shape (inline heap payloads, deep per-recipient copies,
//! O(k) stop scan) against the current shape (slab slots, shared-buffer
//! clones, counter stop check) on the committee broadcast pattern. The
//! `full_run/*` entries exercise the real simulator end to end at two
//! grid points per workload so regressions in the surrounding machinery
//! (adversary hooks, metering, trace plumbing) show up here too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_bench::pump::{pump_new, pump_old};
use dr_bench::runners::{run_committee, run_crash_multi};

fn bench_pump(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling_pump");
    group.sample_size(10);
    for &(n, k, rounds) in &[(1usize << 14, 16usize, 4usize), (1 << 16, 32, 2)] {
        group.bench_with_input(
            BenchmarkId::new("old_shape", format!("n{n}_k{k}")),
            &(n, k, rounds),
            |b, &(n, k, rounds)| {
                b.iter(|| pump_old(n, k, rounds));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("new_shape", format!("n{n}_k{k}")),
            &(n, k, rounds),
            |b, &(n, k, rounds)| {
                b.iter(|| pump_new(n, k, rounds));
            },
        );
    }
    group.finish();
}

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling_full_run");
    group.sample_size(10);
    group.bench_function("committee_n16384_k16_t5", |b| {
        b.iter(|| run_committee(1 << 14, 16, 5, 5, 11));
    });
    group.bench_function("committee_n65536_k32_t10", |b| {
        b.iter(|| run_committee(1 << 16, 32, 10, 10, 11));
    });
    group.bench_function("crash_multi_n16384_k8_b3", |b| {
        b.iter(|| run_crash_multi(1 << 14, 8, 3, 3, 1024, false, 13));
    });
    group.bench_function("crash_multi_n65536_k32_b8", |b| {
        b.iter(|| run_crash_multi(1 << 16, 32, 8, 8, 1024, false, 13));
    });
    group.finish();
}

criterion_group!(sim_scaling, bench_pump, bench_full_runs);
criterion_main!(sim_scaling);
