//! End-to-end protocol benchmarks: full simulated executions per
//! protocol, sized for quick wall-clock comparison (the *query* metrics
//! live in the `fig_*` experiment binaries; these measure simulator
//! throughput per protocol).

use criterion::{criterion_group, criterion_main, Criterion};
use dr_bench::runners::{
    run_committee, run_crash_multi, run_multi_cycle, run_naive, run_single_crash, run_two_cycle,
    ByzMix,
};
use dr_core::PeerId;

fn bench_protocol_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_full_run");
    group.sample_size(10);
    group.bench_function("naive_n4096_k16", |b| {
        b.iter(|| run_naive(4096, 16, 1));
    });
    group.bench_function("alg1_n4096_k16_crash", |b| {
        b.iter(|| run_single_crash(4096, 16, 2, Some(PeerId(3))));
    });
    group.bench_function("alg2_n4096_k16_beta0.5", |b| {
        b.iter(|| run_crash_multi(4096, 16, 8, 8, 1024, false, 3));
    });
    group.bench_function("committee_n4096_k16_t4", |b| {
        b.iter(|| run_committee(4096, 16, 4, 4, 4));
    });
    group.bench_function("two_cycle_n16384_k256_b32", |b| {
        b.iter(|| run_two_cycle(1 << 14, 256, 32, ByzMix::Silent, 5));
    });
    group.bench_function("multi_cycle_n16384_k256_b32", |b| {
        b.iter(|| run_multi_cycle(1 << 14, 256, 32, ByzMix::Silent, 6));
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_runs);
criterion_main!(benches);
