//! Microbenchmarks of the decision-tree machinery (Protocol 3): building
//! trees over conflicting strings and resolving them with `determine`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_core::BitArray;
use dr_protocols::DecisionTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn conflicting_strings(count: usize, len: usize, seed: u64) -> (Vec<BitArray>, BitArray) {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth = BitArray::random(len, &mut rng);
    let mut strings = vec![truth.clone()];
    for _ in 1..count {
        let mut fake = truth.clone();
        // Corrupt a random non-empty subset of positions.
        let flips = rng.gen_range(1..=len.min(8));
        for _ in 0..flips {
            let j = rng.gen_range(0..len);
            fake.flip(j);
        }
        strings.push(fake);
    }
    (strings, truth)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_tree_build");
    for &count in &[4usize, 16, 64] {
        let (strings, _) = conflicting_strings(count, 256, 7);
        group.bench_with_input(BenchmarkId::from_parameter(count), &strings, |b, s| {
            b.iter(|| DecisionTree::build(s));
        });
    }
    group.finish();
}

fn bench_determine(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_tree_determine");
    for &count in &[4usize, 16, 64] {
        let (strings, truth) = conflicting_strings(count, 256, 8);
        let tree = DecisionTree::build(&strings);
        group.bench_with_input(BenchmarkId::from_parameter(count), &tree, |b, t| {
            b.iter(|| {
                let out = t
                    .determine(0..256, &mut |j| truth.get(j))
                    .expect("non-empty");
                assert_eq!(out, truth);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_determine);
criterion_main!(benches);
