//! Hot-path benchmarks: the word-level bulk query/learn/merge fast paths
//! against their per-bit reference implementations, plus one end-to-end
//! `crash::multi` run dominated by these paths.
//!
//! The `*_per_bit` entries reproduce the pre-fast-path code (one metered,
//! dynamically dispatched `Source::bit` call per bit; per-bit `learn`) so
//! the speedup is directly visible in one Criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_core::{
    ArraySource, BitArray, FaultModel, ModelParams, PartialArray, PeerId, SharedSource,
    SourceHandle,
};
use dr_protocols::CrashMultiDownload;
use dr_sim::{CrashPlan, SimBuilder, StandardAdversary, UniformDelay};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-fast-path `query_range`: one metered single-bit query per index.
fn query_range_per_bit(handle: &SourceHandle, range: std::ops::Range<usize>) -> BitArray {
    BitArray::from_fn(range.len(), |i| handle.query(range.start + i))
}

fn bench_query_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_range");
    for &n in &[4096usize, 65536] {
        let mut rng = StdRng::seed_from_u64(1);
        let source = SharedSource::new(ArraySource::new(BitArray::random(n, &mut rng)), 1);
        let handle = source.handle(PeerId(0));
        group.bench_with_input(BenchmarkId::new("bulk", n), &n, |b, &n| {
            b.iter(|| handle.query_range(0..n));
        });
        group.bench_with_input(BenchmarkId::new("per_bit", n), &n, |b, &n| {
            b.iter(|| query_range_per_bit(&handle, 0..n));
        });
    }
    group.finish();
}

fn bench_learn_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("learn_slice");
    for &n in &[4096usize, 65536] {
        let mut rng = StdRng::seed_from_u64(2);
        let bits = BitArray::random(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("bulk", n), &bits, |b, bits| {
            b.iter(|| {
                let mut p = PartialArray::new(bits.len() + 7);
                p.learn_slice(3, bits);
                p.unknown_count()
            });
        });
        group.bench_with_input(BenchmarkId::new("per_bit", n), &bits, |b, bits| {
            b.iter(|| {
                let mut p = PartialArray::new(bits.len() + 7);
                for i in 0..bits.len() {
                    p.learn(3 + i, bits.get(i));
                }
                p.unknown_count()
            });
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    for &n in &[4096usize, 65536] {
        let mut rng = StdRng::seed_from_u64(3);
        let values = BitArray::random(n, &mut rng);
        // Two half-known partials with interleaved coverage.
        let mut a = PartialArray::new(n);
        let mut b = PartialArray::new(n);
        for i in 0..n {
            if i % 2 == 0 {
                a.learn(i, values.get(i));
            } else {
                b.learn(i, values.get(i));
            }
        }
        group.bench_with_input(BenchmarkId::new("bulk", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| {
                let mut m = a.clone();
                m.merge(b);
                m.unknown_count()
            });
        });
        let (a2, b2) = {
            let mut a2 = PartialArray::new(n);
            let mut b2 = PartialArray::new(n);
            for i in 0..n {
                if i % 2 == 0 {
                    a2.learn(i, values.get(i));
                } else {
                    b2.learn(i, values.get(i));
                }
            }
            (a2, b2)
        };
        group.bench_with_input(
            BenchmarkId::new("per_bit", n),
            &(a2, b2),
            |bench, (a, b)| {
                bench.iter(|| {
                    let mut m = a.clone();
                    for i in 0..b.len() {
                        if let Some(v) = b.get(i) {
                            m.learn(i, v);
                        }
                    }
                    m.unknown_count()
                });
            },
        );
    }
    group.finish();
}

fn bench_crash_multi_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("crash_multi_e2e");
    group.sample_size(10);
    let (n, k, b) = (16384usize, 8usize, 3usize);
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .unwrap();
    group.bench_function("run_16384", |bench| {
        bench.iter(|| {
            let sim = SimBuilder::new(params)
                .seed(5)
                .protocol(move |_| CrashMultiDownload::new(n, k, b))
                .adversary(StandardAdversary::new(
                    UniformDelay::new(),
                    CrashPlan::before_event((0..b).map(PeerId), 1),
                ))
                .build();
            sim.run().unwrap().max_nonfaulty_queries
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_query_range,
    bench_learn_slice,
    bench_merge,
    bench_crash_multi_end_to_end
);
criterion_main!(benches);
