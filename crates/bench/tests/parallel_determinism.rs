//! The parallel trial runner must be bit-identical to the serial one:
//! trial `t` always runs with seed `base_seed + t`, and results are
//! merged back in index order before aggregation, so thread count and
//! scheduling cannot leak into the statistics.

use dr_bench::runners::{average, average_par};
use dr_bench::{par, Stats};

/// A deterministic, seed-sensitive stand-in for a simulation run.
fn fake_trial(seed: u64) -> f64 {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 33;
    (x % 10_000) as f64 / 7.0
}

#[test]
fn sample_par_matches_sample_bit_for_bit() {
    for threads in [1, 2, 4, 7] {
        par::set_threads(threads);
        let par_stats = Stats::sample_par(64, 123, fake_trial);
        par::set_threads(0);
        let serial = Stats::sample(64, 123, fake_trial);
        assert_eq!(serial.count, par_stats.count, "threads={threads}");
        // Bit-identity, not approximate equality: the merged sample
        // order must match the serial order exactly.
        assert!(
            serial.mean.to_bits() == par_stats.mean.to_bits()
                && serial.std.to_bits() == par_stats.std.to_bits()
                && serial.min.to_bits() == par_stats.min.to_bits()
                && serial.max.to_bits() == par_stats.max.to_bits(),
            "threads={threads}: serial {serial:?} != parallel {par_stats:?}"
        );
    }
}

#[test]
fn average_par_matches_average() {
    par::set_threads(3);
    let p = average_par(17, 9, fake_trial);
    par::set_threads(0);
    let s = average(17, 9, fake_trial);
    assert_eq!(s.to_bits(), p.to_bits());
}
