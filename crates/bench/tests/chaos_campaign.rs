//! Acceptance tests for the chaos campaign (ISSUE 3):
//!
//! * a ≥500-run sweep over every real protocol × adversary configuration
//!   holds all invariants;
//! * the intentionally broken [`FragileDownload`] fixture produces a
//!   violation that shrinks to a minimal schedule and replays
//!   bit-identically (same violation, same report fingerprint).

use dr_bench::chaos::{
    load_repro, replay_repro, run_campaign, run_case, shrink_failing, write_repro, AdvSource,
    AdversaryKind, Campaign, CaseConfig, ProtocolKind,
};

#[test]
fn campaign_over_all_protocols_holds_invariants() {
    // 56 cases (crash single and two multi sizes, committee, two-cycle and
    // multi-cycle in naive and sampled sizes, × 7 adversary kinds — the
    // crash/hold/chaos quartet plus the link-fault trio) × 18 seeds
    // = 1008 runs.
    let mut campaign = Campaign::new(18, 0xc0ffee);
    campaign.out_dir = None;
    let report = run_campaign(&campaign);
    assert!(
        report.total_runs >= 900,
        "campaign too small: {} runs",
        report.total_runs
    );
    let summaries: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{} seed={}: {}",
                v.repro.case, v.repro.seed, v.repro.violation
            )
        })
        .collect();
    assert!(
        summaries.is_empty(),
        "chaos campaign found violations:\n{}",
        summaries.join("\n")
    );
}

fn fragile_case() -> CaseConfig {
    CaseConfig {
        protocol: ProtocolKind::Fragile,
        adversary: AdversaryKind::ChaosAggressive,
        n: 64,
        k: 4,
        b: 0,
        drop_permille: 0,
    }
}

#[test]
fn fragile_fixture_fails_shrinks_and_replays_bit_identically() {
    let case = fragile_case();
    // The fixture fails whenever the aggressive adversary holds a chunk
    // past the peer's patience; scan a handful of seeds for a failure.
    let seed = (0..30)
        .find(|&s| run_case(&case, s, AdvSource::Fresh).violation.is_some())
        .expect("fragile fixture never failed in 30 seeds");
    let original = run_case(&case, seed, AdvSource::Fresh);

    let repro = shrink_failing(&case, seed).expect("failing run must shrink to a repro");
    assert!(
        repro.violation.contains("download"),
        "fragile bug is a wrong output, got: {}",
        repro.violation
    );
    // Shrinking never adds directives.
    assert!(
        repro.trace.num_fault_directives() <= original.trace.num_fault_directives(),
        "shrinking added fault directives"
    );
    assert!(
        repro.trace.num_hold_directives() <= original.trace.num_hold_directives(),
        "shrinking added hold directives"
    );

    // The reproducer roundtrips through its JSON file.
    let dir = std::env::temp_dir().join(format!("dr_chaos_test_{}", std::process::id()));
    let path = write_repro(&dir, &repro).expect("write repro");
    let loaded = load_repro(&path).expect("load repro");
    assert_eq!(loaded, repro);
    std::fs::remove_dir_all(&dir).ok();

    // Replay is bit-identical: same violation, same report fingerprint,
    // and the re-recorded schedule is a fixed point of the stored one.
    for round in 0..2 {
        let outcome = replay_repro(&loaded);
        assert_eq!(
            outcome.violation.as_deref(),
            Some(repro.violation.as_str()),
            "replay round {round} produced a different violation"
        );
        assert_eq!(
            outcome.fingerprint, repro.fingerprint,
            "replay round {round} produced a different fingerprint"
        );
        assert_eq!(
            outcome.trace, repro.trace,
            "replay round {round} re-recorded a different schedule"
        );
    }
}

#[test]
fn shrunk_schedule_is_one_minimal() {
    let case = fragile_case();
    let seed = (0..30)
        .find(|&s| run_case(&case, s, AdvSource::Fresh).violation.is_some())
        .expect("fragile fixture never failed in 30 seeds");
    let repro = shrink_failing(&case, seed).expect("failing run must shrink");
    // 1-minimality over the directive classes the shrinker edits: undoing
    // any single remaining hold or partial release makes the run pass.
    let mut singles = Vec::new();
    for (i, s) in repro.trace.sends.iter().enumerate() {
        if s.is_none() {
            let mut t = repro.trace.clone();
            t.sends[i] = Some(512);
            singles.push(t);
        }
    }
    for (i, r) in repro.trace.releases.iter().enumerate() {
        if r.is_some() {
            let mut t = repro.trace.clone();
            t.releases[i] = None;
            singles.push(t);
        }
    }
    assert!(
        !singles.is_empty(),
        "fragile failure needs at least one hold directive"
    );
    for (j, t) in singles.iter().enumerate() {
        let outcome = run_case(&case, seed, AdvSource::Replay(t));
        assert_eq!(
            outcome.violation, None,
            "edit {j} still fails — schedule was not 1-minimal"
        );
    }
}
