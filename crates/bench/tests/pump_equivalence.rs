//! Parallel window dispatch must be invisible in the results: for every
//! (shards × pump-threads) combination the run's
//! [`dr_sim::RunReport::fingerprint`] — outputs, fault sets, query
//! counts, Q/T/M metrics, event counts — is bit-identical to the serial
//! pump. Three layers of evidence:
//!
//! 1. a proptest sweeping shards ∈ {1,3,8} × threads ∈ {1,2,4} × seed
//!    over crash-multi (both crash-free and crash-planned), committee,
//!    and 2-cycle runs, comparing each against a fresh serial run;
//! 2. re-pins of the *pre-rewrite* golden fingerprints (recorded before
//!    the zero-copy/slab rewrite, long before the plane existed) under
//!    `threads = 4`, so the parallel path is anchored to historical
//!    reality rather than to its own serial twin;
//! 3. a schedule recorded on the serial pump replayed through the
//!    parallel path.

use dr_bench::runners::{self, ByzMix, PumpMode};
use dr_protocols::CommitteeDownload;
use dr_sim::{
    ChurnMixer, LossyLinks, PartitionHealer, RecordingAdversary, ReplayAdversary, SilentAgent,
    SimBuilder, StandardAdversary,
};
use proptest::prelude::*;

/// The pump grid the suite promises bit-identity over.
const SHARDS: [usize; 3] = [1, 3, 8];
const THREADS: [usize; 3] = [1, 2, 4];

/// One fingerprint per protocol family under an arbitrary pump mode.
/// `case` 0: crash-multi with 3 planned crashes (the adversary is not
/// parallel-safe, so dispatch must *degrade* to serial — the gate itself
/// is under test); 1: crash-multi with zero crashes (parallel-eligible);
/// 2: committee with one silent Byzantine peer; 3: 2-cycle sampled
/// regime with a mixed Byzantine slate.
fn fingerprint_of(case: usize, seed: u64, pump: PumpMode) -> u64 {
    match case {
        0 => runners::run_crash_multi_pumped(96, 8, 4, 3, 1024, false, seed, pump).fingerprint(),
        1 => runners::run_crash_multi_pumped(96, 8, 4, 0, 1024, false, seed, pump).fingerprint(),
        2 => runners::run_committee_pumped(48, 7, 2, 1, seed, pump).fingerprint(),
        3 => runners::run_two_cycle_pumped(2048, 48, 3, ByzMix::Mixed, seed, pump).fingerprint(),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sampled (case, shards, threads, seed) agrees with the serial
    /// pump on the very same seed.
    #[test]
    fn any_pump_mode_matches_the_serial_fingerprint(
        case in 0usize..4,
        shards_i in 0usize..3,
        threads_i in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let (shards, threads) = (SHARDS[shards_i], THREADS[threads_i]);
        let serial = fingerprint_of(case, seed, PumpMode::serial());
        let pumped = fingerprint_of(case, seed, PumpMode::parallel(shards, threads));
        prop_assert_eq!(
            serial, pumped,
            "case={} shards={} threads={} seed={}", case, shards, threads, seed
        );
    }
}

/// The full 3×3 grid on one fixed seed per case, deterministically (the
/// proptest above samples the grid; this leaves no cell unvisited).
#[test]
fn every_grid_cell_matches_serial_on_a_fixed_seed() {
    for case in 0..4 {
        let seed = 7 + case as u64;
        let serial = fingerprint_of(case, seed, PumpMode::serial());
        for shards in SHARDS {
            for threads in THREADS {
                let pumped = fingerprint_of(case, seed, PumpMode::parallel(shards, threads));
                assert_eq!(
                    serial, pumped,
                    "case={case} shards={shards} threads={threads} seed={seed}"
                );
            }
        }
    }
}

/// Pre-rewrite golden fingerprints for the three families whose bench
/// runners reproduce the golden scenarios exactly, duplicated from
/// `crates/protocols/tests/golden_fingerprints.rs` (`GOLDENS`). Keep the
/// two tables in sync: a regeneration there (intentional semantic change
/// only) must be mirrored here.
const GOLDEN_SEEDS: [u64; 3] = [1, 42, 0xD0DD];
const GOLDEN_CRASH_MULTI: [u64; 3] = [0x3f71e89ab90f6f57, 0xc69c628d07a3d892, 0x43d21c48d49e797a];
const GOLDEN_COMMITTEE: [u64; 3] = [0x76e232984b741394, 0x19317bf14263d3f0, 0xe99205b016f3e690];
const GOLDEN_TWO_CYCLE: [u64; 3] = [0xeb460bf5611d0015, 0xc21249b195c23f04, 0xa66ba89e979e1604];

/// `threads = 4` reproduces the pre-rewrite goldens bit-identically —
/// the parallel plane is pinned to recorded history, not merely to
/// today's serial implementation.
#[test]
fn parallel_dispatch_reproduces_the_pre_rewrite_goldens() {
    let pump = PumpMode::parallel(8, 4);
    for (i, seed) in GOLDEN_SEEDS.into_iter().enumerate() {
        let got =
            runners::run_crash_multi_pumped(128, 8, 4, 3, 1024, false, seed, pump).fingerprint();
        assert_eq!(
            got, GOLDEN_CRASH_MULTI[i],
            "crash_multi seed={seed}: parallel pump diverged from pre-rewrite golden"
        );
        let got = runners::run_committee_pumped(48, 7, 2, 1, seed, pump).fingerprint();
        assert_eq!(
            got, GOLDEN_COMMITTEE[i],
            "committee seed={seed}: parallel pump diverged from pre-rewrite golden"
        );
        let got =
            runners::run_two_cycle_pumped(4096, 96, 6, ByzMix::Mixed, seed, pump).fingerprint();
        assert_eq!(
            got, GOLDEN_TWO_CYCLE[i],
            "two_cycle seed={seed}: parallel pump diverged from pre-rewrite golden"
        );
    }
}

/// Active link faults force the parallel plane to degrade window
/// dispatch to the serial path (parked, retransmitted, and deferred
/// deliveries are cross-window effects no lane may reorder): for each of
/// the three link-fault adversaries, an explicitly parallel pump must
/// produce the serial fingerprint bit for bit.
#[test]
fn link_fault_adversaries_degrade_the_parallel_pump_bit_identically() {
    let (n, k, t) = (48, 7, 2);
    let run = |seed: u64, which: usize, pump: PumpMode| {
        let builder = SimBuilder::new(runners::byz_params(n, k, t))
            .seed(seed)
            .protocol(move |_| CommitteeDownload::new(n, k, t))
            .byzantine(dr_core::PeerId(0), SilentAgent::new());
        let builder = match which {
            0 => builder.adversary(PartitionHealer::new(k, seed, 2)),
            1 => builder.adversary(LossyLinks::new(seed, 200)),
            _ => builder.adversary(ChurnMixer::new(k, seed, 2)),
        };
        pump.apply(builder)
            .build()
            .run()
            .expect("committee terminates under link faults")
            .fingerprint()
    };
    for seed in GOLDEN_SEEDS {
        for (which, label) in ["partition_healer", "lossy_links", "churn_mixer"]
            .into_iter()
            .enumerate()
        {
            let serial = run(seed, which, PumpMode::serial());
            let pumped = run(seed, which, PumpMode::parallel(8, 4));
            assert_eq!(
                serial, pumped,
                "{label} seed={seed}: parallel pump diverged under active link faults"
            );
        }
    }
}

/// A schedule recorded on the serial pump replays bit-identically
/// through parallel dispatch: the recorded trace is crash- and cut-free,
/// so [`ReplayAdversary`] stays parallel-safe and windows genuinely fan
/// out on the plane during the replay.
#[test]
fn recorded_schedules_replay_through_the_parallel_path() {
    let (n, k, t) = (48, 7, 2);
    for seed in GOLDEN_SEEDS {
        let (recorder, handle) = RecordingAdversary::new(StandardAdversary::benign());
        let sim = SimBuilder::new(runners::byz_params(n, k, t))
            .seed(seed)
            .protocol(move |_| CommitteeDownload::new(n, k, t))
            .byzantine(dr_core::PeerId(0), SilentAgent::new())
            .adversary(recorder)
            .build();
        let recorded = sim.run().expect("recording run terminates");
        let trace = handle.take();

        let pump = PumpMode::parallel(3, 4);
        let sim = pump
            .apply(
                SimBuilder::new(runners::byz_params(n, k, t))
                    .seed(seed)
                    .protocol(move |_| CommitteeDownload::new(n, k, t))
                    .byzantine(dr_core::PeerId(0), SilentAgent::new())
                    .adversary(ReplayAdversary::new(trace)),
            )
            .build();
        let replayed = sim.run().expect("replay run terminates");
        assert_eq!(
            recorded.fingerprint(),
            replayed.fingerprint(),
            "seed={seed}: replay through the parallel pump diverged from the recording"
        );
    }
}
