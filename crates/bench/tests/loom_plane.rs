//! Exhaustive model checks for the execution plane's synchronization core.
//!
//! Run with `cargo test -p dr-bench --features loom-model --test loom_plane`.
//! Each test wraps a small `PlaneCore` protocol in `loom::model`, which
//! re-executes the closure under **every** schedule of its lock, condvar,
//! and atomic operations. The properties the plane's docs promise are
//! verified here rather than argued:
//!
//! * no lost wakeups — a parked worker or submitter always wakes when work
//!   or a completion arrives, on every schedule (a lost notify would show
//!   up as a deadlock, which the checker reports);
//! * no double-pop / lost jobs — every submitted job runs exactly once and
//!   results land in index order;
//! * window-only helpers never steal trial jobs — the in-trial blocking
//!   discipline that keeps trial nesting bounded;
//! * a panicking job is forwarded to its submitter and never deadlocks
//!   waiters or workers.
//!
//! Models are deliberately tiny (≤ 2 threads, ≤ 3 jobs): loom explores the
//! full interleaving space, so size shows up as execution count, not
//! coverage.
#![cfg(feature = "loom-model")]

use dr_bench::plane::core::{Entry, PlaneCore};
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::Arc;
use std::panic::{catch_unwind, AssertUnwindSafe};

type TrialJob = Box<dyn FnOnce() -> usize + Send + 'static>;

#[test]
fn worker_and_submitter_run_every_job_exactly_once() {
    loom::model(|| {
        let core = Arc::new(PlaneCore::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let worker = {
            let core = Arc::clone(&core);
            loom::thread::spawn(move || core.worker_loop())
        };
        let jobs: Vec<TrialJob> = (0..2)
            .map(|i| {
                let ran = Arc::clone(&ran);
                let job: TrialJob = Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    i
                });
                job
            })
            .collect();
        let out = core.run_batch(jobs, false, |_, _| ());
        // Index order regardless of which thread ran which job; a lost or
        // double-popped job would break one of these on some schedule.
        assert_eq!(out, vec![0, 1]);
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        core.shutdown();
        worker.join().unwrap();
    });
}

#[test]
fn submitter_alone_helps_its_batch_to_completion() {
    // No workers at all: the help loop must drain the whole batch without
    // ever parking (parking with nothing running would deadlock, which the
    // checker would report).
    loom::model(|| {
        let core = PlaneCore::new();
        let jobs: Vec<TrialJob> = (0..3)
            .map(|i| {
                let job: TrialJob = Box::new(move || i * i);
                job
            })
            .collect();
        let mut completion_order = Vec::new();
        let out = core.run_batch(jobs, false, |i, _| completion_order.push(i));
        assert_eq!(out, vec![0, 1, 4]);
        assert_eq!(completion_order, vec![0, 1, 2]);
    });
}

#[test]
fn window_helper_never_steals_a_queued_trial() {
    // A trial job sits in the queue while a window batch runs with no
    // workers: the window submitter must help *around* it (window jobs
    // jump the queue) and must never pop the trial — popping a whole trial
    // from inside a trial is the unbounded-recursion case the blocking
    // discipline forbids.
    loom::model(|| {
        let core = PlaneCore::new();
        let trial_ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&trial_ran);
        core.push(vec![Entry {
            window: false,
            job: Box::new(move || flag.store(true, Ordering::SeqCst)),
        }]);
        let window_ran = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<TrialJob> = (0..2)
            .map(|i| {
                let window_ran = Arc::clone(&window_ran);
                let job: TrialJob = Box::new(move || {
                    window_ran.fetch_add(1, Ordering::SeqCst);
                    i
                });
                job
            })
            .collect();
        let out = core.run_batch(jobs, true, |_, _| ());
        assert_eq!(out, vec![0, 1]);
        assert_eq!(window_ran.load(Ordering::SeqCst), 2);
        assert!(
            !trial_ran.load(Ordering::SeqCst),
            "window-only helper popped a trial job"
        );
        // The trial is still there for a top-level frame to run.
        let job = core.pop(false).expect("trial job must still be queued");
        job();
        assert!(trial_ran.load(Ordering::SeqCst));
        assert!(core.pop(false).is_none());
    });
}

#[test]
fn window_batch_with_worker_completes_on_every_schedule() {
    // Worker and in-trial submitter race over front-of-queue window jobs;
    // the batch must complete (each job exactly once) no matter who wins
    // which pop, and the worker must park/wake correctly around it.
    loom::model(|| {
        let core = Arc::new(PlaneCore::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let worker = {
            let core = Arc::clone(&core);
            loom::thread::spawn(move || core.worker_loop())
        };
        let jobs: Vec<TrialJob> = (0..2)
            .map(|i| {
                let ran = Arc::clone(&ran);
                let job: TrialJob = Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    i
                });
                job
            })
            .collect();
        let out = core.run_batch(jobs, true, |_, _| ());
        assert_eq!(out, vec![0, 1]);
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        core.shutdown();
        worker.join().unwrap();
    });
}

#[test]
fn panicking_job_reaches_the_submitter_and_never_deadlocks() {
    // One good job, one that panics. On every schedule the submitter must
    // observe the panic (resumed on its own stack), and afterwards the
    // worker must still respond to shutdown — i.e. a panicking job leaves
    // no waiter parked forever and no lock poisoned in a way that hangs
    // the plane.
    loom::model(|| {
        let core = Arc::new(PlaneCore::new());
        let worker = {
            let core = Arc::clone(&core);
            loom::thread::spawn(move || core.worker_loop())
        };
        let jobs: Vec<TrialJob> = vec![Box::new(|| 7), Box::new(|| panic!("job boom"))];
        let result = catch_unwind(AssertUnwindSafe(|| core.run_batch(jobs, false, |_, _| ())));
        let payload = result.expect_err("the panic must be forwarded");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert_eq!(msg, "job boom");
        core.shutdown();
        worker.join().unwrap();
    });
}
