//! Thread-based executor for DR protocols.
//!
//! The discrete-event simulator (`dr-sim`) gives deterministic, adversary-
//! controlled executions; this crate gives the complementary evidence that
//! the same [`dr_core::Protocol`] state machines run unmodified under
//! *real* concurrency: one OS thread per peer, crossbeam channels as the
//! complete network, true nondeterministic interleavings from the OS
//! scheduler plus injected per-message latency jitter, and optional crash
//! injection (a peer thread that silently stops at its `i`-th event).
//!
//! Queries go through the same metered [`dr_core::SharedSource`], so query
//! complexity is measured identically in both worlds.
//!
//! The [`serve`] module adds the multi-client face of the runtime: a
//! [`FrontDoor`] that admits many concurrent download requests (bounded,
//! with backpressure), fans each over one peer fleet, and serves overlap
//! from a shared [`dr_core::AdmissionPlane`] so overlapping clients do not
//! double-pay query cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;

pub use serve::{FrontDoor, RequestOutcome, ServeConfig};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dr_core::{
    ArraySource, BitArray, Context, ModelParams, PeerId, Protocol, ProtocolMessage, SharedSource,
    SourceHandle,
};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::thread;
use std::time::{Duration, Instant};

/// Crash injection: the peer stops processing permanently before its
/// `after_events`-th event (0 = before start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The peer to crash.
    pub peer: PeerId,
    /// Events (start + deliveries) processed before the crash.
    pub after_events: u64,
}

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Model parameters (`n`, `k`, `b`, message size).
    pub params: ModelParams,
    /// Master seed for input generation and per-peer RNGs.
    pub seed: u64,
    /// Maximum per-message latency jitter.
    pub max_latency: Duration,
    /// Crash injections (must not exceed the fault budget).
    pub crashes: Vec<CrashSpec>,
    /// Wall-clock guard: the run fails if it exceeds this.
    pub timeout: Duration,
}

impl RuntimeConfig {
    /// A benign configuration with mild jitter and no crashes.
    pub fn new(params: ModelParams, seed: u64) -> Self {
        RuntimeConfig {
            params,
            seed,
            max_latency: Duration::from_micros(500),
            crashes: Vec::new(),
            timeout: Duration::from_secs(60),
        }
    }

    /// Adds a crash injection.
    pub fn with_crash(mut self, spec: CrashSpec) -> Self {
        self.crashes.push(spec);
        self
    }
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct RuntimeReport {
    /// Per-peer outputs (`None` for crashed peers).
    pub outputs: Vec<Option<BitArray>>,
    /// Per-peer query counts.
    pub query_counts: Vec<u64>,
    /// Max queries over non-crashed peers.
    pub max_honest_queries: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// The input that was downloaded.
    pub input: BitArray,
}

impl RuntimeReport {
    /// Checks that every non-crashed peer downloaded the input exactly.
    ///
    /// # Errors
    ///
    /// Returns the ID of the first violating peer.
    pub fn verify(&self, crashed: &[PeerId]) -> Result<(), PeerId> {
        for (i, out) in self.outputs.iter().enumerate() {
            if crashed.contains(&PeerId(i)) {
                continue;
            }
            match out {
                Some(bits) if bits == &self.input => {}
                _ => return Err(PeerId(i)),
            }
        }
        Ok(())
    }
}

/// Error from a threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The wall-clock timeout elapsed before every live peer terminated
    /// (deadlock or pathological scheduling).
    Timeout,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Timeout => write!(f, "threaded run timed out"),
        }
    }
}

impl std::error::Error for RuntimeError {}

struct ThreadCtx<M> {
    me: PeerId,
    num_peers: usize,
    input_len: usize,
    handle: SourceHandle,
    senders: Vec<Sender<(PeerId, M)>>,
    rng: StdRng,
    jitter: StdRng,
    max_latency: Duration,
}

impl<M: ProtocolMessage> Context<M> for ThreadCtx<M> {
    fn me(&self) -> PeerId {
        self.me
    }
    fn num_peers(&self) -> usize {
        self.num_peers
    }
    fn input_len(&self) -> usize {
        self.input_len
    }
    fn send(&mut self, to: PeerId, msg: M) {
        // Latency jitter before handing to the channel; receiver threads
        // add their own scheduling nondeterminism.
        let micros = self.max_latency.as_micros() as u64;
        if micros > 0 {
            let wait = self.jitter.gen_range(0..=micros);
            if wait > 50 {
                thread::sleep(Duration::from_micros(wait));
            }
        }
        // A send to a terminated (exited) peer fails harmlessly.
        let _ = self.senders[to.index()].send((self.me, msg));
    }
    fn query(&mut self, index: usize) -> bool {
        self.handle.query(index)
    }
    fn query_range(&mut self, range: std::ops::Range<usize>) -> BitArray {
        // Bulk path: one meter update + word-level copy instead of the
        // default per-bit loop. Identical cost accounting and results.
        self.handle.query_range(range)
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.rng
    }
}

/// Runs one protocol instance per OS thread over crossbeam channels.
///
/// # Errors
///
/// Returns [`RuntimeError::Timeout`] if live peers fail to terminate
/// within the configured wall-clock budget.
///
/// # Panics
///
/// Panics if `crashes` names more peers than the fault budget allows.
///
/// # Examples
///
/// ```
/// use dr_core::ModelParams;
/// use dr_protocols::CrashMultiDownload;
/// use dr_runtime::{run_threaded, RuntimeConfig};
///
/// let params = ModelParams::builder(128, 4)
///     .faults(dr_core::FaultModel::Crash, 1)
///     .build()?;
/// let config = RuntimeConfig::new(params, 42);
/// let report = run_threaded(config, move |_| CrashMultiDownload::new(128, 4, 1)).unwrap();
/// report.verify(&[]).unwrap();
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
pub fn run_threaded<P, F>(config: RuntimeConfig, factory: F) -> Result<RuntimeReport, RuntimeError>
where
    P: Protocol + 'static,
    F: Fn(PeerId) -> P + Send + Sync,
{
    let k = config.params.k();
    let n = config.params.n();
    let crashed: Vec<PeerId> = config.crashes.iter().map(|c| c.peer).collect();
    assert!(
        crashed.len() <= config.params.b(),
        "more crashes than the fault budget"
    );
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0051_7eed);
    let input = BitArray::random(n, &mut rng);
    let source = SharedSource::new(ArraySource::new(input.clone()), k);

    let mut senders: Vec<Sender<(PeerId, P::Msg)>> = Vec::with_capacity(k);
    let mut receivers: Vec<Receiver<(PeerId, P::Msg)>> = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    let started = Instant::now();
    let deadline = started + config.timeout;
    // dr-lint: allow(raw-thread-spawn): one OS thread per peer is this runtime's point — peers are concurrent actors racing real channels, not pool work items
    let outputs: Vec<Option<BitArray>> = thread::scope(|scope| {
        let mut joins = Vec::with_capacity(k);
        for (i, rx) in receivers.into_iter().enumerate() {
            let me = PeerId(i);
            let crash_at = config
                .crashes
                .iter()
                .find(|c| c.peer == me)
                .map(|c| c.after_events);
            let mut ctx = ThreadCtx {
                me,
                num_peers: k,
                input_len: n,
                handle: source.handle(me),
                senders: senders.clone(),
                rng: StdRng::seed_from_u64(config.seed.wrapping_mul(31).wrapping_add(i as u64)),
                jitter: StdRng::seed_from_u64(config.seed.wrapping_add(7777 + i as u64)),
                max_latency: config.max_latency,
            };
            let factory = &factory;
            joins.push(scope.spawn(move || {
                let mut protocol = factory(me);
                let mut events = 0u64;
                if crash_at == Some(0) {
                    return None;
                }
                protocol.on_start(&mut ctx);
                events += 1;
                while !protocol.is_terminated() {
                    if let Some(limit) = crash_at {
                        if events >= limit {
                            return None;
                        }
                    }
                    match rx.recv_deadline(deadline) {
                        Ok((from, msg)) => {
                            protocol.on_message(from, msg, &mut ctx);
                            events += 1;
                        }
                        Err(RecvTimeoutError::Timeout) => return None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                protocol.output().cloned()
            }));
        }
        // Drop the main copy of the senders so channels close when all
        // peer threads exit.
        drop(senders);
        joins
            .into_iter()
            .map(|j| j.join().expect("peer thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    // A live (non-crashed) peer without output means the deadline hit.
    for (i, out) in outputs.iter().enumerate() {
        if out.is_none() && !crashed.contains(&PeerId(i)) {
            return Err(RuntimeError::Timeout);
        }
    }
    let query_counts = source.meter().counts();
    let max_honest_queries = (0..k)
        .filter(|i| !crashed.contains(&PeerId(*i)))
        .map(|i| query_counts[i])
        .max()
        .unwrap_or(0);
    Ok(RuntimeReport {
        outputs,
        query_counts,
        max_honest_queries,
        elapsed,
        input,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::FaultModel;
    use dr_protocols::{CrashMultiDownload, NaiveDownload, SingleCrashDownload};

    fn params(n: usize, k: usize, b: usize) -> ModelParams {
        ModelParams::builder(n, k)
            .faults(FaultModel::Crash, b)
            .build()
            .unwrap()
    }

    #[test]
    fn naive_under_threads() {
        let config = RuntimeConfig::new(params(64, 3, 0), 1);
        let report = run_threaded(config, |_| NaiveDownload::new()).unwrap();
        report.verify(&[]).unwrap();
        assert_eq!(report.max_honest_queries, 64);
    }

    #[test]
    fn crash_multi_under_threads() {
        let config = RuntimeConfig::new(params(256, 6, 2), 2);
        let report = run_threaded(config, move |_| CrashMultiDownload::new(256, 6, 2)).unwrap();
        report.verify(&[]).unwrap();
    }

    #[test]
    fn crash_multi_with_real_crashes() {
        let config = RuntimeConfig::new(params(200, 5, 2), 3)
            .with_crash(CrashSpec {
                peer: PeerId(0),
                after_events: 0,
            })
            .with_crash(CrashSpec {
                peer: PeerId(3),
                after_events: 2,
            });
        let report = run_threaded(config, move |_| CrashMultiDownload::new(200, 5, 2)).unwrap();
        report.verify(&[PeerId(0), PeerId(3)]).unwrap();
    }

    #[test]
    fn single_crash_protocol_with_crash() {
        let config = RuntimeConfig::new(params(120, 4, 1), 4).with_crash(CrashSpec {
            peer: PeerId(2),
            after_events: 1,
        });
        let report = run_threaded(config, move |_| SingleCrashDownload::new(120, 4)).unwrap();
        report.verify(&[PeerId(2)]).unwrap();
    }

    #[test]
    fn repeated_runs_all_verify() {
        // Real scheduling differs run to run; correctness must not.
        for seed in 0..5 {
            let config = RuntimeConfig::new(params(100, 4, 1), seed).with_crash(CrashSpec {
                peer: PeerId((seed % 4) as usize),
                after_events: seed % 3,
            });
            let crashed = vec![PeerId((seed % 4) as usize)];
            let report = run_threaded(config, move |_| CrashMultiDownload::new(100, 4, 1)).unwrap();
            report.verify(&crashed).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "more crashes")]
    fn too_many_crashes_panics() {
        let config = RuntimeConfig::new(params(10, 3, 0), 0).with_crash(CrashSpec {
            peer: PeerId(0),
            after_events: 0,
        });
        let _ = run_threaded(config, |_| NaiveDownload::new());
    }
}
