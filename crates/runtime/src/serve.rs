//! Multi-client front door over one peer fleet.
//!
//! The paper's §4 deployment picture (oracle networks à la DORA) has many
//! clients pulling data through a single fleet of peers, with queries to
//! the external source as the expensive resource. [`FrontDoor`] is the
//! in-process version of that service:
//!
//! * it accepts **many concurrent download requests** ([`FrontDoor::serve`]
//!   is called from any number of client threads),
//! * admission is **bounded**: at most `max_in_flight` requests are served
//!   at once, the rest block at the gate (backpressure instead of
//!   unbounded queue growth),
//! * each admitted request is **fanned over the peer fleet**: its range is
//!   split into contiguous per-peer spans, each read through the shared
//!   [`AdmissionPlane`] so the leading peer is charged amortized `Q`,
//! * **overlap is served from the plane**: ranges already fetched (by this
//!   request or any earlier/concurrent one) cost no upstream queries, and
//!   concurrent misses on the same words coalesce into one metered fetch.
//!
//! Each request gets a [`RequestOutcome`] with its bits, wall-clock
//! latency split into gate wait vs. service time, and the aggregated
//! [`ReadReceipt`] — `metered_bits` is the request's *attributed* share of
//! upstream `Q`, the quantity `fig_serve` tracks cold vs. warm.

use dr_core::sync::{Condvar, Mutex, PoisonError};
use dr_core::{AdmissionPlane, BitArray, PeerId, QueryMeter, ReadReceipt, Source};
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a [`FrontDoor`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Fleet size: requests are striped over this many metered peers.
    pub num_peers: usize,
    /// Cache shards in the admission plane.
    pub shards: usize,
    /// Maximum concurrently-served requests; further callers block at the
    /// admission gate until a slot frees.
    pub max_in_flight: usize,
}

impl ServeConfig {
    /// A front door over `num_peers` peers with one cache shard per peer
    /// and an in-flight bound of `2 × num_peers`.
    pub fn new(num_peers: usize) -> Self {
        assert!(num_peers > 0, "front door needs at least one peer");
        ServeConfig {
            num_peers,
            shards: num_peers,
            max_in_flight: 2 * num_peers,
        }
    }

    /// Overrides the cache shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the in-flight admission bound.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        assert!(max_in_flight > 0, "admission bound must be positive");
        self.max_in_flight = max_in_flight;
        self
    }
}

/// Counting semaphore for bounded admission, built on the facade
/// mutex/condvar so its blocking behaviour is model-checkable.
struct Gate {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new(permits: usize) -> Self {
        Gate {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut permits = self
            .permits
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *permits == 0 {
            permits = self
                .cv
                .wait(permits)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *permits -= 1;
    }

    fn release(&self) {
        {
            let mut permits = self
                .permits
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *permits += 1;
        }
        self.cv.notify_one();
    }
}

/// Outcome of one served request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The requested bits.
    pub bits: BitArray,
    /// Aggregated per-word accounting across the fleet fan-out.
    pub receipt: ReadReceipt,
    /// Upstream bits this request was charged for (its amortized `Q`
    /// share). Equal to `receipt.fetched_bits`; hits and coalesced words
    /// cost nothing.
    pub metered_bits: u64,
    /// Time spent blocked at the admission gate.
    pub queued: Duration,
    /// Time spent being served (fan-out + plane reads) after admission.
    pub service: Duration,
}

impl RequestOutcome {
    /// Total request latency as seen by the client.
    pub fn latency(&self) -> Duration {
        self.queued + self.service
    }
}

/// An in-process multi-client download service: bounded admission in
/// front of an [`AdmissionPlane`]-backed peer fleet.
///
/// Cloning is cheap; clones share the fleet, cache, meter, and gate.
///
/// # Examples
///
/// ```
/// use dr_core::{ArraySource, BitArray};
/// use dr_runtime::{FrontDoor, ServeConfig};
///
/// let input = BitArray::from_fn(4096, |i| i % 3 == 0);
/// let door = FrontDoor::new(ArraySource::new(input.clone()), ServeConfig::new(4));
/// let cold = door.serve(0..2048);
/// assert_eq!(cold.bits, input.slice(0..2048));
/// assert!(cold.metered_bits > 0);
/// let warm = door.serve(0..2048); // fully cached: no upstream charge
/// assert_eq!(warm.metered_bits, 0);
/// ```
#[derive(Clone)]
pub struct FrontDoor {
    plane: AdmissionPlane,
    gate: Arc<Gate>,
    num_peers: usize,
}

impl FrontDoor {
    /// Builds a front door serving `source` through a fresh admission
    /// plane.
    pub fn new(source: impl Source + 'static, config: ServeConfig) -> Self {
        let plane = AdmissionPlane::new(source, config.num_peers, config.shards.max(1));
        FrontDoor {
            plane,
            gate: Arc::new(Gate::new(config.max_in_flight)),
            num_peers: config.num_peers,
        }
    }

    /// The shared admission plane (cache statistics, meter).
    pub fn plane(&self) -> &AdmissionPlane {
        &self.plane
    }

    /// The shared per-peer query meter.
    pub fn meter(&self) -> &Arc<QueryMeter> {
        self.plane.meter()
    }

    /// Bits in the underlying source.
    pub fn len(&self) -> usize {
        self.plane.len()
    }

    /// Whether the underlying source is empty.
    pub fn is_empty(&self) -> bool {
        self.plane.is_empty()
    }

    /// Serves one download request, blocking at the admission gate if
    /// `max_in_flight` requests are already in service.
    ///
    /// The range is split into `num_peers` contiguous spans, each read
    /// through that peer's plane handle: the peer leading a miss is
    /// charged for exactly the bits fetched upstream, while overlap with
    /// previously- or concurrently-served requests is free.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > len()`.
    pub fn serve(&self, range: Range<usize>) -> RequestOutcome {
        let arrived = Instant::now();
        self.gate.acquire();
        let admitted = Instant::now();
        let outcome = self.serve_admitted(range, admitted);
        self.gate.release();
        RequestOutcome {
            queued: admitted - arrived,
            ..outcome
        }
    }

    fn serve_admitted(&self, range: Range<usize>, admitted: Instant) -> RequestOutcome {
        let total = range.len();
        let mut bits = BitArray::zeros(total);
        let mut receipt = ReadReceipt::default();
        if total > 0 {
            // Contiguous per-peer spans, word-aligned at the seams so two
            // peers never split (and double-fetch) one cache word.
            let span = total.div_ceil(self.num_peers).div_ceil(64) * 64;
            let mut offset = 0;
            let mut peer = 0;
            while offset < total {
                let end = (offset + span).min(total);
                let handle = self.plane.handle(PeerId(peer % self.num_peers));
                let (chunk, r) = handle.query_range(range.start + offset..range.start + end);
                bits.write_at(offset, &chunk);
                receipt.absorb(&r);
                offset = end;
                peer += 1;
            }
        }
        RequestOutcome {
            bits,
            metered_bits: receipt.fetched_bits,
            receipt,
            queued: Duration::ZERO,
            service: admitted.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::ArraySource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::thread;

    fn door(n: usize, peers: usize, seed: u64) -> (FrontDoor, BitArray) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = BitArray::random(n, &mut rng);
        (
            FrontDoor::new(ArraySource::new(input.clone()), ServeConfig::new(peers)),
            input,
        )
    }

    #[test]
    fn cold_then_warm() {
        let (door, input) = door(4096, 4, 1);
        let cold = door.serve(0..4096);
        assert_eq!(cold.bits, input);
        assert_eq!(cold.metered_bits, 4096);
        let warm = door.serve(0..4096);
        assert_eq!(warm.bits, input);
        assert_eq!(warm.metered_bits, 0);
        assert!(warm.receipt.is_free());
    }

    #[test]
    fn fan_out_attributes_q_across_the_fleet() {
        let (door, _) = door(4096, 4, 2);
        let outcome = door.serve(0..4096);
        assert_eq!(outcome.metered_bits, 4096);
        let counts = door.meter().counts();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<u64>(), 4096);
        // Even striping: no peer pays more than its word-aligned share.
        assert_eq!(door.meter().max_over((0..4).map(PeerId)), 1024);
    }

    #[test]
    fn partial_overlap_only_charges_the_gap() {
        let (door, input) = door(8192, 2, 3);
        let first = door.serve(0..4096);
        assert_eq!(first.metered_bits, 4096);
        let second = door.serve(2048..6144);
        assert_eq!(second.bits, input.slice(2048..6144));
        assert_eq!(second.metered_bits, 2048, "overlapping half is free");
        assert_eq!(second.receipt.hit_words, 32);
    }

    #[test]
    fn gate_bounds_concurrent_service() {
        // A source that tracks its own concurrent `bits` callers; with
        // max_in_flight = 1 the front door must fully serialize requests,
        // so the source never sees two overlapping calls.
        struct Tracking {
            inner: ArraySource,
            state: parking_lot::Mutex<(u32, u32)>, // (current, peak)
        }
        impl Source for Tracking {
            fn len(&self) -> usize {
                self.inner.len()
            }
            fn bit(&self, index: usize) -> bool {
                self.inner.bit(index)
            }
            fn bits(&self, range: Range<usize>) -> BitArray {
                {
                    let mut s = self.state.lock();
                    s.0 += 1;
                    s.1 = s.1.max(s.0);
                }
                thread::sleep(Duration::from_micros(200));
                let out = Source::bits(&self.inner, range);
                self.state.lock().0 -= 1;
                out
            }
        }
        let mut rng = StdRng::seed_from_u64(4);
        let input = BitArray::random(2048, &mut rng);
        let tracking = Arc::new(Tracking {
            inner: ArraySource::new(input.clone()),
            state: parking_lot::Mutex::new((0, 0)),
        });
        let door = FrontDoor::new(
            Arc::clone(&tracking) as Arc<dyn Source>,
            ServeConfig::new(2).with_max_in_flight(1),
        );
        // dr-lint: allow(raw-thread-spawn): concurrent client threads in a test, joined by scope exit
        thread::scope(|scope| {
            for t in 0..4 {
                let door = door.clone();
                let input = &input;
                scope.spawn(move || {
                    let lo = t * 512;
                    let out = door.serve(lo..lo + 512);
                    assert_eq!(out.bits, input.slice(lo..lo + 512));
                });
            }
        });
        assert_eq!(tracking.state.lock().1, 1, "admission gate must serialize");
        // Disjoint ranges: every bit paid exactly once.
        assert_eq!(door.plane().cache().stats().upstream_bits, 2048);
    }

    #[test]
    fn concurrent_overlapping_requests_pay_once_total() {
        let (door, input) = door(4096, 4, 5);
        // dr-lint: allow(raw-thread-spawn): concurrent client threads in a test, joined by scope exit
        thread::scope(|scope| {
            for _ in 0..6 {
                let door = door.clone();
                let input = &input;
                scope.spawn(move || {
                    let out = door.serve(0..4096);
                    assert_eq!(&out.bits, input);
                });
            }
        });
        // Six clients, one array: the plane pays n bits upstream, total.
        assert_eq!(door.plane().cache().stats().upstream_bits, 4096);
        assert_eq!(door.meter().counts().iter().sum::<u64>(), 4096);
    }

    #[test]
    fn empty_request_is_free() {
        let (door, _) = door(128, 2, 6);
        let out = door.serve(64..64);
        assert_eq!(out.bits.len(), 0);
        assert_eq!(out.metered_bits, 0);
    }
}
