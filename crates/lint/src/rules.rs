//! The determinism rules and the per-file checker.
//!
//! Rules are tier-aware. The *deterministic* tier (`dr-core`, `dr-sim`,
//! `dr-protocols`, `dr-oracle`) carries every promise of bit-identical
//! replay, so it gets the full set; the *tooling* tier (`dr-bench`,
//! `dr-cli`, `dr-runtime`, `dr-lint`) may read wall clocks and use
//! unordered maps, except in files that feed the replay artifacts
//! (`ScheduleTrace` / `RunReport`), where unordered iteration could leak
//! into recorded schedules.

use crate::tokenizer::{scan, Token, TokenKind};
use crate::{Diagnostic, Tier};

/// Rule: `HashMap`/`HashSet` in deterministic state.
pub const RULE_UNORDERED: &str = "unordered-collections";
/// Rule: wall-clock reads (`Instant`, `SystemTime`, `UNIX_EPOCH`).
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule: entropy-seeded RNG (`thread_rng`, `rand::random`, `from_entropy`).
pub const RULE_ENTROPY_RNG: &str = "entropy-rng";
/// Rule: deterministic-tier `lib.rs` missing `#![forbid(unsafe_code)]`.
pub const RULE_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
/// Rule: malformed `dr-lint: allow(...)` escape hatch.
pub const RULE_BAD_ALLOW: &str = "bad-allow";
/// Rule: payload binding cloned inside a `send`/`broadcast` call.
pub const RULE_PAYLOAD_CLONE: &str = "payload-clone";
/// Rule: raw `thread::spawn`/`thread::scope`/`thread::Builder` outside the
/// unified execution plane (`dr_bench::plane`).
pub const RULE_RAW_THREAD: &str = "raw-thread-spawn";
/// Rule: explicit atomic memory orderings without a justifying allow
/// (`SeqCst` is flagged as a lazy default, weaker orderings as claims
/// that need their invariant stated).
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule: a lock acquired while another guard binding is still live in the
/// same lexical scope (nested-guard deadlock risk).
pub const RULE_LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule: raw `Mutex`/`Condvar`/`RwLock`/`Atomic*` construction outside the
/// sync facade and the execution plane, invisible to the loom models.
pub const RULE_SYNC_OUTSIDE_FACADE: &str = "sync-primitive-outside-facade";

/// Every rule name, for `allow(...)` validation and docs.
pub const ALL_RULES: &[&str] = &[
    RULE_UNORDERED,
    RULE_WALL_CLOCK,
    RULE_ENTROPY_RNG,
    RULE_FORBID_UNSAFE,
    RULE_BAD_ALLOW,
    RULE_PAYLOAD_CLONE,
    RULE_RAW_THREAD,
    RULE_ATOMIC_ORDERING,
    RULE_LOCK_DISCIPLINE,
    RULE_SYNC_OUTSIDE_FACADE,
];

/// The files sanctioned to own OS threads and raw primitives: the unified
/// work-stealing plane (now a module directory) every other crate is
/// supposed to schedule onto.
fn is_plane_file(file: &str) -> bool {
    file == "crates/bench/src/plane.rs" || file.starts_with("crates/bench/src/plane/")
}

/// The sync facades: the swap points where `std::sync` becomes `loom::sync`
/// under the `loom-model` feature. Primitive re-exports live here by
/// definition, so the facade-routing rules do not apply to them.
const FACADE_FILES: &[&str] = &[
    "crates/bench/src/sync.rs",
    "crates/core/src/sync.rs",
    "crates/sim/src/sync.rs",
];

/// Primitive types whose *construction* the `sync-primitive-outside-facade`
/// rule polices.
const SYNC_PRIMITIVES: &[&str] = &[
    "Mutex",
    "Condvar",
    "RwLock",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
];

/// Bindings the `payload-clone` rule treats as message payloads. These are
/// the conventional names protocol code gives to `BitArray`-typed data
/// (matching the tokenizer's type-blind view of the source).
const PAYLOAD_NAMES: &[&str] = &["bits", "values", "payload"];

/// A parsed `// dr-lint: allow(<rule>): <justification>` comment.
struct Allow {
    rule: String,
    /// The single source line this allow suppresses: its own line for a
    /// trailing comment, the next line for a standalone one.
    target_line: usize,
}

/// Extracts allow comments, reporting malformed ones as diagnostics.
fn collect_allows(
    file: &str,
    scanned: &crate::tokenizer::Scan,
    out: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &scanned.comments {
        // The directive must be the comment's whole purpose: anchored at
        // the start, after the `//`/`/*`/`//!` markers. Prose that merely
        // mentions the syntax mid-sentence is not a directive.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("dr-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            out.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                col: c.col,
                rule: RULE_BAD_ALLOW,
                message:
                    "unrecognized dr-lint directive (only `allow(<rule>): <justification>` exists)"
                        .into(),
                suggestion: "write `// dr-lint: allow(<rule>): <why this is sound>`".into(),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (rule, after) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((rule, after)) => (rule.trim(), after),
            None => {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: c.line,
                    col: c.col,
                    rule: RULE_BAD_ALLOW,
                    message: "dr-lint allow is missing its `(<rule>)`".into(),
                    suggestion: format!("name one of: {}", ALL_RULES.join(", ")),
                });
                continue;
            }
        };
        if !ALL_RULES.contains(&rule) {
            out.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                col: c.col,
                rule: RULE_BAD_ALLOW,
                message: format!("dr-lint allow names unknown rule '{rule}'"),
                suggestion: format!("name one of: {}", ALL_RULES.join(", ")),
            });
            continue;
        }
        // The justification is mandatory: a colon followed by non-empty
        // prose. An allow without a reason is itself a diagnostic.
        let justification = after.trim_start().strip_prefix(':').map(str::trim);
        match justification {
            Some(j) if !j.is_empty() => allows.push(Allow {
                rule: rule.to_string(),
                target_line: if c.trailing { c.line } else { c.line + 1 },
            }),
            _ => out.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                col: c.col,
                rule: RULE_BAD_ALLOW,
                message: format!("dr-lint allow({rule}) has no justification"),
                suggestion: "append `: <why this specific use is deterministic/sound>`".into(),
            }),
        }
    }
    allows
}

/// Whether the ident at `i` completes the path `a::b` ending here (i.e.
/// tokens `[.., Ident(a), ':', ':', tokens[i]]`).
fn path_prefix_is(tokens: &[Token], i: usize, a: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].is_ident(a)
}

/// Checks one file's source against every rule for its tier.
///
/// `is_lib_rs` enables the `missing-forbid-unsafe` check (it only applies
/// to crate roots). Diagnostics suppressed by a well-formed
/// `dr-lint: allow` comment are dropped; malformed allows are reported.
pub fn check_source(file: &str, source: &str, tier: Tier, is_lib_rs: bool) -> Vec<Diagnostic> {
    let scanned = scan(source);
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    let allows = collect_allows(file, &scanned, &mut out);

    let tokens = &scanned.tokens;
    // Tooling-tier files only get the unordered-collections rule when
    // they touch the replay artifacts.
    let feeds_replay = tokens
        .iter()
        .any(|t| t.is_ident("ScheduleTrace") || t.is_ident("RunReport"));
    // Files that drive the vendored model checker (`loom::` paths) are the
    // modelling layer itself: loom collapses every ordering to SeqCst and
    // its primitives are the instrumented stand-ins, so the atomic and
    // facade rules would only police the checker's own scaffolding.
    let imports_model_checker = tokens
        .windows(3)
        .any(|w| w[0].is_ident("loom") && w[1].is_punct(':') && w[2].is_punct(':'));
    // Files that construct primitives *through* a sync facade path
    // (`crate::sync`, `dr_bench::sync`, `dr_core::sync`, `dr_sim::sync`)
    // are already routed through the swap point the facade rule exists to
    // enforce.
    let uses_facade_sync = tokens.iter().enumerate().any(|(i, t)| {
        t.is_ident("sync")
            && (path_prefix_is(tokens, i, "crate")
                || path_prefix_is(tokens, i, "dr_bench")
                || path_prefix_is(tokens, i, "dr_core")
                || path_prefix_is(tokens, i, "dr_sim"))
    });
    let is_facade = FACADE_FILES.contains(&file);
    // `.write()`/`.read()` only mean lock acquisition in files that
    // actually use an RwLock (io traits share the method names).
    let has_rwlock = tokens.iter().any(|t| t.is_ident("RwLock"));

    // Whether the current token sits inside a `use` declaration. Imports
    // name orderings without *using* them (`use std::sync::atomic::Ordering`
    // or even `Ordering::Relaxed`), so the atomic-ordering rule must not
    // treat them like call sites.
    let mut in_use = false;

    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct(';') {
            in_use = false;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "use" {
            in_use = true;
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => {
                let flagged = match tier {
                    Tier::Deterministic => true,
                    Tier::Tooling => feeds_replay,
                };
                if flagged {
                    let det = if t.text == "HashMap" {
                        "DetMap"
                    } else {
                        "DetSet"
                    };
                    let btree = if t.text == "HashMap" {
                        "BTreeMap"
                    } else {
                        "BTreeSet"
                    };
                    raw.push(Diagnostic {
                        file: file.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: RULE_UNORDERED,
                        message: format!(
                            "{} has random iteration order{}",
                            t.text,
                            if tier == Tier::Tooling {
                                " and this file feeds ScheduleTrace/RunReport"
                            } else {
                                ""
                            }
                        ),
                        suggestion: format!(
                            "use dr_core::collections::{det} (or std::collections::{btree}) so iteration is a pure function of the data"
                        ),
                    });
                }
            }
            "Instant" | "SystemTime" | "UNIX_EPOCH" if tier == Tier::Deterministic => {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_WALL_CLOCK,
                    message: format!("{} reads the wall clock", t.text),
                    suggestion:
                        "deterministic crates must use simulated time (dr_sim::Ticks); move timing to the tooling tier"
                            .into(),
                });
            }
            // `use std::time::*` can smuggle `Instant`/`SystemTime` in
            // without naming them.
            "time" if tier == Tier::Deterministic && path_prefix_is(tokens, i, "std") => {
                let glob = tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|a| a.is_punct('*'));
                if glob {
                    raw.push(Diagnostic {
                        file: file.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: RULE_WALL_CLOCK,
                        message: "glob import of std::time can bring wall-clock types into scope"
                            .into(),
                        suggestion: "import std::time::Duration explicitly if that is all you need"
                            .into(),
                    });
                }
            }
            "thread_rng" | "from_entropy" if tier == Tier::Deterministic => {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_ENTROPY_RNG,
                    message: format!("{} seeds randomness from OS entropy", t.text),
                    suggestion:
                        "derive every RNG from the run seed (SeedableRng::seed_from_u64 via the simulation builder)"
                            .into(),
                });
            }
            // payload-clone: `<payload>.clone()` inside the argument list
            // of a `.send(...)`/`.broadcast(...)` method call. The shared
            // `BitArray` buffer makes a *message* clone O(1); cloning the
            // payload binding at each call site instead keeps the
            // pre-zero-copy O(k·n) fan-out shape alive in the source and
            // defeats the move-the-binding idiom the simulator is built
            // around.
            "send" | "broadcast"
                if tier == Tier::Deterministic
                    && i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|a| a.is_punct('(')) =>
            {
                let call = t.text.clone();
                // Walk the call's parenthesized argument list (struct
                // literal braces inside it do not nest parens).
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < tokens.len() && depth > 0 {
                    let a = &tokens[j];
                    if a.is_punct('(') {
                        depth += 1;
                    } else if a.is_punct(')') {
                        depth -= 1;
                    } else if a.kind == TokenKind::Ident
                        && PAYLOAD_NAMES.contains(&a.text.as_str())
                        && tokens.get(j + 1).is_some_and(|b| b.is_punct('.'))
                        && tokens.get(j + 2).is_some_and(|b| b.is_ident("clone"))
                        && tokens.get(j + 3).is_some_and(|b| b.is_punct('('))
                    {
                        raw.push(Diagnostic {
                            file: file.to_string(),
                            line: a.line,
                            col: a.col,
                            rule: RULE_PAYLOAD_CLONE,
                            message: format!(
                                "`{}.clone()` inside a `{call}` call clones the payload binding per call site",
                                a.text
                            ),
                            suggestion: format!(
                                "BitArray's Clone is an O(1) shared-buffer bump — build the message once, \
                                 move `{}` into it, and clone the message per recipient (retain a copy \
                                 with a clone *outside* the {call} expression if needed)",
                                a.text
                            ),
                        });
                    }
                    j += 1;
                }
            }
            // raw-thread-spawn: OS threads must come from the unified
            // work-stealing plane. An ad-hoc `thread::spawn` (or a scoped
            // pool via `thread::scope`/`thread::Builder`) competes with
            // the plane's workers for cores and hides its work from the
            // plane's two-priority queue, so trial/window scheduling and
            // the thread-count knobs stop describing reality. Applies to
            // both tiers — deterministic crates must not thread at all,
            // and tooling crates must route through `dr_bench::plane`.
            "spawn" | "scope" | "Builder"
                if !is_plane_file(file)
                    && path_prefix_is(tokens, i, "thread")
                    // `loom::thread::spawn` creates *model* threads inside
                    // the checker, not OS threads competing with the plane.
                    && !(i >= 6
                        && tokens[i - 4].is_punct(':')
                        && tokens[i - 5].is_punct(':')
                        && tokens[i - 6].is_ident("loom")) =>
            {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_RAW_THREAD,
                    message: format!(
                        "thread::{} creates OS threads outside the execution plane",
                        t.text
                    ),
                    suggestion:
                        "schedule onto the shared pool (dr_bench::plane::run_indexed for trials, \
                         PlaneExecutor for window jobs); a genuinely unpoolable thread needs a \
                         `dr-lint: allow(raw-thread-spawn)` with its reason"
                            .into(),
                });
            }
            // atomic-ordering: every explicit ordering at a call site is a
            // claim about the program's happens-before graph. `SeqCst` is
            // flagged as the lazy default (it hides the actual invariant
            // and costs fences); weaker orderings are flagged until the
            // invariant they rely on is stated in an anchored allow. The
            // facade and the model-checking layer are exempt — loom
            // collapses all orderings to SeqCst by construction.
            "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                if path_prefix_is(tokens, i, "Ordering")
                    && !in_use
                    && !is_facade
                    && !imports_model_checker =>
            {
                let (message, suggestion) = if t.text == "SeqCst" {
                    (
                        "Ordering::SeqCst is the lazy default, not a justification".to_string(),
                        "pick the weakest ordering the invariant actually needs and state it \
                         with `// dr-lint: allow(atomic-ordering): <invariant>` (DESIGN.md §4); \
                         keep SeqCst only with a written reason"
                            .to_string(),
                    )
                } else {
                    (
                        format!(
                            "Ordering::{} asserts a memory-ordering invariant without stating it",
                            t.text
                        ),
                        "anchor `// dr-lint: allow(atomic-ordering): <why this ordering is \
                         sufficient>` on this line (DESIGN.md §4 has the contract), or route \
                         the atomic through the sync facade so loom models it"
                            .to_string(),
                    )
                };
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_ATOMIC_ORDERING,
                    message,
                    suggestion,
                });
            }
            // sync-primitive-outside-facade: a primitive constructed
            // outside the facade/plane never swaps to its loom stand-in,
            // so the concurrency models cannot see it and the loom suites
            // silently lose coverage.
            name if SYNC_PRIMITIVES.contains(&name)
                && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|a| a.is_ident("new"))
                && !is_plane_file(file)
                && !is_facade
                && !imports_model_checker
                && !uses_facade_sync =>
            {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_SYNC_OUTSIDE_FACADE,
                    message: format!("raw {name}::new outside the sync facade"),
                    suggestion: format!(
                        "construct through the crate's sync facade (src/sync.rs) so the \
                         loom-model feature can swap in the checked primitive, or justify \
                         with `// dr-lint: allow(sync-primitive-outside-facade): <why {name} \
                         cannot be modelled>`"
                    ),
                });
            }
            "random" if tier == Tier::Deterministic && path_prefix_is(tokens, i, "rand") => {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_ENTROPY_RNG,
                    message: "rand::random draws from the entropy-seeded thread RNG".into(),
                    suggestion:
                        "derive every RNG from the run seed (SeedableRng::seed_from_u64 via the simulation builder)"
                            .into(),
                });
            }
            _ => {}
        }
    }

    // lock-discipline: a tokenizer-level nesting heuristic in the style of
    // `payload-clone`. A guard binding (`let g = x.lock()…`) is live from
    // its statement until `drop(g)` or the end of its block; acquiring
    // another lock while one is live is the two-guard shape that invites
    // ABBA deadlocks (the exact bug class `loom_plane.rs` models), so it
    // needs an anchored allow stating the lock order. Statement-temporary
    // guards (`x.lock().unwrap().push(…)`) do not outlive their statement
    // and are not tracked.
    {
        let mut depth = 0usize;
        let mut guards: Vec<(String, usize)> = Vec::new();
        // Token index where the current statement begins, for spotting
        // `let <name> = … .lock() …;` bindings.
        let mut stmt_start = 0usize;
        for (i, t) in tokens.iter().enumerate() {
            if t.is_punct('{') {
                depth += 1;
                stmt_start = i + 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.1 <= depth);
                stmt_start = i + 1;
            } else if t.is_punct(';') {
                stmt_start = i + 1;
            } else if t.is_ident("drop")
                && tokens.get(i + 1).is_some_and(|a| a.is_punct('('))
                && tokens.get(i + 3).is_some_and(|a| a.is_punct(')'))
            {
                if let Some(n) = tokens.get(i + 2) {
                    guards.retain(|g| g.0 != n.text);
                }
            } else if t.kind == TokenKind::Ident
                && (t.text == "lock" || (has_rwlock && (t.text == "write" || t.text == "read")))
                && i >= 1
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|a| a.is_punct('('))
            {
                if let Some((name, _)) = guards.first() {
                    raw.push(Diagnostic {
                        file: file.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: RULE_LOCK_DISCIPLINE,
                        message: format!(
                            "`.{}()` acquired while guard `{name}` is still live in this scope",
                            t.text
                        ),
                        suggestion: format!(
                            "release `{name}` first (drop({name}) or a narrower block), or \
                             state the global lock order with \
                             `// dr-lint: allow(lock-discipline): <order>`"
                        ),
                    });
                }
                // A `let`-bound guard outlives its statement.
                if tokens.get(stmt_start).is_some_and(|a| a.is_ident("let")) {
                    let mut j = stmt_start + 1;
                    while tokens.get(j).is_some_and(|a| a.is_ident("mut")) {
                        j += 1;
                    }
                    if let Some(name) = tokens.get(j).filter(|a| a.kind == TokenKind::Ident) {
                        guards.push((name.text.clone(), depth));
                    }
                }
            }
        }
    }

    if is_lib_rs && tier == Tier::Deterministic {
        let has_forbid = tokens.windows(4).any(|w| {
            w[0].is_ident("forbid")
                && w[1].is_punct('(')
                && w[2].is_ident("unsafe_code")
                && w[3].is_punct(')')
        });
        if !has_forbid {
            raw.push(Diagnostic {
                file: file.to_string(),
                line: 1,
                col: 1,
                rule: RULE_FORBID_UNSAFE,
                message: "deterministic-tier crate root lacks #![forbid(unsafe_code)]".into(),
                suggestion: "add `#![forbid(unsafe_code)]` at the top of lib.rs".into(),
            });
        }
    }

    // Apply allow suppression: each well-formed allow silences matching
    // diagnostics on exactly its target line.
    for d in raw {
        let suppressed = allows
            .iter()
            .any(|a| a.rule == d.rule && a.target_line == d.line);
        if !suppressed {
            out.push(d);
        }
    }
    out.sort_by_key(|a| (a.line, a.col));
    out
}
