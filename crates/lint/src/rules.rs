//! The determinism rules and the per-file checker.
//!
//! Rules are tier-aware. The *deterministic* tier (`dr-core`, `dr-sim`,
//! `dr-protocols`, `dr-oracle`) carries every promise of bit-identical
//! replay, so it gets the full set; the *tooling* tier (`dr-bench`,
//! `dr-cli`, `dr-runtime`, `dr-lint`) may read wall clocks and use
//! unordered maps, except in files that feed the replay artifacts
//! (`ScheduleTrace` / `RunReport`), where unordered iteration could leak
//! into recorded schedules.

use crate::tokenizer::{scan, Token, TokenKind};
use crate::{Diagnostic, Tier};

/// Rule: `HashMap`/`HashSet` in deterministic state.
pub const RULE_UNORDERED: &str = "unordered-collections";
/// Rule: wall-clock reads (`Instant`, `SystemTime`, `UNIX_EPOCH`).
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule: entropy-seeded RNG (`thread_rng`, `rand::random`, `from_entropy`).
pub const RULE_ENTROPY_RNG: &str = "entropy-rng";
/// Rule: deterministic-tier `lib.rs` missing `#![forbid(unsafe_code)]`.
pub const RULE_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
/// Rule: malformed `dr-lint: allow(...)` escape hatch.
pub const RULE_BAD_ALLOW: &str = "bad-allow";
/// Rule: payload binding cloned inside a `send`/`broadcast` call.
pub const RULE_PAYLOAD_CLONE: &str = "payload-clone";
/// Rule: raw `thread::spawn`/`thread::scope`/`thread::Builder` outside the
/// unified execution plane (`dr_bench::plane`).
pub const RULE_RAW_THREAD: &str = "raw-thread-spawn";

/// Every rule name, for `allow(...)` validation and docs.
pub const ALL_RULES: &[&str] = &[
    RULE_UNORDERED,
    RULE_WALL_CLOCK,
    RULE_ENTROPY_RNG,
    RULE_FORBID_UNSAFE,
    RULE_BAD_ALLOW,
    RULE_PAYLOAD_CLONE,
    RULE_RAW_THREAD,
];

/// The one file sanctioned to own OS threads: the unified work-stealing
/// plane every other crate is supposed to schedule onto.
const PLANE_FILE: &str = "crates/bench/src/plane.rs";

/// Bindings the `payload-clone` rule treats as message payloads. These are
/// the conventional names protocol code gives to `BitArray`-typed data
/// (matching the tokenizer's type-blind view of the source).
const PAYLOAD_NAMES: &[&str] = &["bits", "values", "payload"];

/// A parsed `// dr-lint: allow(<rule>): <justification>` comment.
struct Allow {
    rule: String,
    /// The single source line this allow suppresses: its own line for a
    /// trailing comment, the next line for a standalone one.
    target_line: usize,
}

/// Extracts allow comments, reporting malformed ones as diagnostics.
fn collect_allows(
    file: &str,
    scanned: &crate::tokenizer::Scan,
    out: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &scanned.comments {
        // The directive must be the comment's whole purpose: anchored at
        // the start, after the `//`/`/*`/`//!` markers. Prose that merely
        // mentions the syntax mid-sentence is not a directive.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("dr-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            out.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                col: c.col,
                rule: RULE_BAD_ALLOW,
                message:
                    "unrecognized dr-lint directive (only `allow(<rule>): <justification>` exists)"
                        .into(),
                suggestion: "write `// dr-lint: allow(<rule>): <why this is sound>`".into(),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (rule, after) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((rule, after)) => (rule.trim(), after),
            None => {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: c.line,
                    col: c.col,
                    rule: RULE_BAD_ALLOW,
                    message: "dr-lint allow is missing its `(<rule>)`".into(),
                    suggestion: format!("name one of: {}", ALL_RULES.join(", ")),
                });
                continue;
            }
        };
        if !ALL_RULES.contains(&rule) {
            out.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                col: c.col,
                rule: RULE_BAD_ALLOW,
                message: format!("dr-lint allow names unknown rule '{rule}'"),
                suggestion: format!("name one of: {}", ALL_RULES.join(", ")),
            });
            continue;
        }
        // The justification is mandatory: a colon followed by non-empty
        // prose. An allow without a reason is itself a diagnostic.
        let justification = after.trim_start().strip_prefix(':').map(str::trim);
        match justification {
            Some(j) if !j.is_empty() => allows.push(Allow {
                rule: rule.to_string(),
                target_line: if c.trailing { c.line } else { c.line + 1 },
            }),
            _ => out.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                col: c.col,
                rule: RULE_BAD_ALLOW,
                message: format!("dr-lint allow({rule}) has no justification"),
                suggestion: "append `: <why this specific use is deterministic/sound>`".into(),
            }),
        }
    }
    allows
}

/// Whether the ident at `i` completes the path `a::b` ending here (i.e.
/// tokens `[.., Ident(a), ':', ':', tokens[i]]`).
fn path_prefix_is(tokens: &[Token], i: usize, a: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].is_ident(a)
}

/// Checks one file's source against every rule for its tier.
///
/// `is_lib_rs` enables the `missing-forbid-unsafe` check (it only applies
/// to crate roots). Diagnostics suppressed by a well-formed
/// `dr-lint: allow` comment are dropped; malformed allows are reported.
pub fn check_source(file: &str, source: &str, tier: Tier, is_lib_rs: bool) -> Vec<Diagnostic> {
    let scanned = scan(source);
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    let allows = collect_allows(file, &scanned, &mut out);

    let tokens = &scanned.tokens;
    // Tooling-tier files only get the unordered-collections rule when
    // they touch the replay artifacts.
    let feeds_replay = tokens
        .iter()
        .any(|t| t.is_ident("ScheduleTrace") || t.is_ident("RunReport"));

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => {
                let flagged = match tier {
                    Tier::Deterministic => true,
                    Tier::Tooling => feeds_replay,
                };
                if flagged {
                    let det = if t.text == "HashMap" {
                        "DetMap"
                    } else {
                        "DetSet"
                    };
                    let btree = if t.text == "HashMap" {
                        "BTreeMap"
                    } else {
                        "BTreeSet"
                    };
                    raw.push(Diagnostic {
                        file: file.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: RULE_UNORDERED,
                        message: format!(
                            "{} has random iteration order{}",
                            t.text,
                            if tier == Tier::Tooling {
                                " and this file feeds ScheduleTrace/RunReport"
                            } else {
                                ""
                            }
                        ),
                        suggestion: format!(
                            "use dr_core::collections::{det} (or std::collections::{btree}) so iteration is a pure function of the data"
                        ),
                    });
                }
            }
            "Instant" | "SystemTime" | "UNIX_EPOCH" if tier == Tier::Deterministic => {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_WALL_CLOCK,
                    message: format!("{} reads the wall clock", t.text),
                    suggestion:
                        "deterministic crates must use simulated time (dr_sim::Ticks); move timing to the tooling tier"
                            .into(),
                });
            }
            // `use std::time::*` can smuggle `Instant`/`SystemTime` in
            // without naming them.
            "time" if tier == Tier::Deterministic && path_prefix_is(tokens, i, "std") => {
                let glob = tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|a| a.is_punct('*'));
                if glob {
                    raw.push(Diagnostic {
                        file: file.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: RULE_WALL_CLOCK,
                        message: "glob import of std::time can bring wall-clock types into scope"
                            .into(),
                        suggestion: "import std::time::Duration explicitly if that is all you need"
                            .into(),
                    });
                }
            }
            "thread_rng" | "from_entropy" if tier == Tier::Deterministic => {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_ENTROPY_RNG,
                    message: format!("{} seeds randomness from OS entropy", t.text),
                    suggestion:
                        "derive every RNG from the run seed (SeedableRng::seed_from_u64 via the simulation builder)"
                            .into(),
                });
            }
            // payload-clone: `<payload>.clone()` inside the argument list
            // of a `.send(...)`/`.broadcast(...)` method call. The shared
            // `BitArray` buffer makes a *message* clone O(1); cloning the
            // payload binding at each call site instead keeps the
            // pre-zero-copy O(k·n) fan-out shape alive in the source and
            // defeats the move-the-binding idiom the simulator is built
            // around.
            "send" | "broadcast"
                if tier == Tier::Deterministic
                    && i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|a| a.is_punct('(')) =>
            {
                let call = t.text.clone();
                // Walk the call's parenthesized argument list (struct
                // literal braces inside it do not nest parens).
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < tokens.len() && depth > 0 {
                    let a = &tokens[j];
                    if a.is_punct('(') {
                        depth += 1;
                    } else if a.is_punct(')') {
                        depth -= 1;
                    } else if a.kind == TokenKind::Ident
                        && PAYLOAD_NAMES.contains(&a.text.as_str())
                        && tokens.get(j + 1).is_some_and(|b| b.is_punct('.'))
                        && tokens.get(j + 2).is_some_and(|b| b.is_ident("clone"))
                        && tokens.get(j + 3).is_some_and(|b| b.is_punct('('))
                    {
                        raw.push(Diagnostic {
                            file: file.to_string(),
                            line: a.line,
                            col: a.col,
                            rule: RULE_PAYLOAD_CLONE,
                            message: format!(
                                "`{}.clone()` inside a `{call}` call clones the payload binding per call site",
                                a.text
                            ),
                            suggestion: format!(
                                "BitArray's Clone is an O(1) shared-buffer bump — build the message once, \
                                 move `{}` into it, and clone the message per recipient (retain a copy \
                                 with a clone *outside* the {call} expression if needed)",
                                a.text
                            ),
                        });
                    }
                    j += 1;
                }
            }
            // raw-thread-spawn: OS threads must come from the unified
            // work-stealing plane. An ad-hoc `thread::spawn` (or a scoped
            // pool via `thread::scope`/`thread::Builder`) competes with
            // the plane's workers for cores and hides its work from the
            // plane's two-priority queue, so trial/window scheduling and
            // the thread-count knobs stop describing reality. Applies to
            // both tiers — deterministic crates must not thread at all,
            // and tooling crates must route through `dr_bench::plane`.
            "spawn" | "scope" | "Builder"
                if file != PLANE_FILE && path_prefix_is(tokens, i, "thread") =>
            {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_RAW_THREAD,
                    message: format!(
                        "thread::{} creates OS threads outside the execution plane",
                        t.text
                    ),
                    suggestion:
                        "schedule onto the shared pool (dr_bench::plane::run_indexed for trials, \
                         PlaneExecutor for window jobs); a genuinely unpoolable thread needs a \
                         `dr-lint: allow(raw-thread-spawn)` with its reason"
                            .into(),
                });
            }
            "random" if tier == Tier::Deterministic && path_prefix_is(tokens, i, "rand") => {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: RULE_ENTROPY_RNG,
                    message: "rand::random draws from the entropy-seeded thread RNG".into(),
                    suggestion:
                        "derive every RNG from the run seed (SeedableRng::seed_from_u64 via the simulation builder)"
                            .into(),
                });
            }
            _ => {}
        }
    }

    if is_lib_rs && tier == Tier::Deterministic {
        let has_forbid = tokens.windows(4).any(|w| {
            w[0].is_ident("forbid")
                && w[1].is_punct('(')
                && w[2].is_ident("unsafe_code")
                && w[3].is_punct(')')
        });
        if !has_forbid {
            raw.push(Diagnostic {
                file: file.to_string(),
                line: 1,
                col: 1,
                rule: RULE_FORBID_UNSAFE,
                message: "deterministic-tier crate root lacks #![forbid(unsafe_code)]".into(),
                suggestion: "add `#![forbid(unsafe_code)]` at the top of lib.rs".into(),
            });
        }
    }

    // Apply allow suppression: each well-formed allow silences matching
    // diagnostics on exactly its target line.
    for d in raw {
        let suppressed = allows
            .iter()
            .any(|a| a.rule == d.rule && a.target_line == d.line);
        if !suppressed {
            out.push(d);
        }
    }
    out.sort_by_key(|a| (a.line, a.col));
    out
}
