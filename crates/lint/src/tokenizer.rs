//! A lightweight Rust tokenizer — just enough lexical structure for the
//! determinism rules, with no external parser dependency.
//!
//! The scanner understands the parts of Rust's lexical grammar that could
//! otherwise produce false positives: line and (nested) block comments,
//! string/char/byte literals with escapes, raw strings with arbitrary
//! hash fences, and lifetimes (so `'a` is not mistaken for an unclosed
//! char literal). Identifiers inside comments, doc comments, and string
//! literals are *not* emitted as code tokens — a doc sentence mentioning
//! `HashMap` never trips a rule. Comments are collected separately so the
//! `// dr-lint: allow(...)` escape hatch can be parsed with exact
//! positions.

/// What a code token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (value irrelevant to every rule).
    Number,
    /// A single punctuation character.
    Punct,
}

/// One code token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token text (single char for punctuation).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }
}

/// One comment (line or block) with its source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text, including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based column the comment starts at.
    pub col: usize,
    /// Whether any code token precedes the comment on its starting line
    /// (a trailing comment annotates its own line; a standalone comment
    /// annotates the next).
    pub trailing: bool,
}

/// Tokenized source: code tokens plus comments, in source order.
#[derive(Debug, Default)]
pub struct Scan {
    /// Code tokens (identifiers, numbers, punctuation).
    pub tokens: Vec<Token>,
    /// All comments.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Counts the `#` fence of a raw string starting after `r`/`br`. Returns
/// `Some(hashes)` if a raw string actually starts here (`r"`, `r#"`, …).
fn raw_fence(cursor: &mut Cursor) -> Option<usize> {
    let mut hashes = 0;
    loop {
        match cursor.peek() {
            Some('#') => {
                cursor.bump();
                hashes += 1;
            }
            Some('"') => {
                cursor.bump();
                return Some(hashes);
            }
            _ => return None,
        }
    }
}

/// Consumes a raw string body up to `"` followed by `hashes` hashes.
fn skip_raw_string(cursor: &mut Cursor, hashes: usize) {
    while let Some(c) = cursor.bump() {
        if c == '"' {
            let mut seen = 0;
            while seen < hashes && cursor.peek() == Some('#') {
                cursor.bump();
                seen += 1;
            }
            if seen == hashes {
                return;
            }
        }
    }
}

/// Consumes a normal string (`"`) or char-ish (`'`) literal body with
/// backslash escapes; the opening quote is already consumed.
fn skip_quoted(cursor: &mut Cursor, quote: char) {
    while let Some(c) = cursor.bump() {
        match c {
            '\\' => {
                cursor.bump();
            }
            c if c == quote => return,
            _ => {}
        }
    }
}

/// Tokenizes `src` into code tokens and comments.
pub fn scan(src: &str) -> Scan {
    let mut cursor = Cursor::new(src);
    let mut out = Scan::default();
    // Line of the last code token, for classifying trailing comments.
    let mut last_token_line = 0usize;

    while let Some(c) = cursor.peek() {
        let (line, col) = (cursor.line, cursor.col);
        match c {
            c if c.is_whitespace() => {
                cursor.bump();
            }
            '/' => {
                cursor.bump();
                match cursor.peek() {
                    Some('/') => {
                        let mut text = String::from("/");
                        while let Some(n) = cursor.peek() {
                            if n == '\n' {
                                break;
                            }
                            text.push(n);
                            cursor.bump();
                        }
                        out.comments.push(Comment {
                            text,
                            line,
                            col,
                            trailing: last_token_line == line,
                        });
                    }
                    Some('*') => {
                        cursor.bump();
                        let mut text = String::from("/*");
                        let mut depth = 1usize;
                        while depth > 0 {
                            match cursor.bump() {
                                None => break,
                                Some('*') if cursor.peek() == Some('/') => {
                                    cursor.bump();
                                    text.push_str("*/");
                                    depth -= 1;
                                }
                                Some('/') if cursor.peek() == Some('*') => {
                                    cursor.bump();
                                    text.push_str("/*");
                                    depth += 1;
                                }
                                Some(ch) => text.push(ch),
                            }
                        }
                        out.comments.push(Comment {
                            text,
                            line,
                            col,
                            trailing: last_token_line == line,
                        });
                    }
                    _ => {
                        out.tokens.push(Token {
                            kind: TokenKind::Punct,
                            text: "/".into(),
                            line,
                            col,
                        });
                        last_token_line = line;
                    }
                }
            }
            '"' => {
                cursor.bump();
                skip_quoted(&mut cursor, '"');
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                cursor.bump();
                match cursor.peek() {
                    Some('\\') => skip_quoted(&mut cursor, '\''),
                    Some(n) if is_ident_start(n) => {
                        // Consume the ident; if a closing quote follows
                        // immediately it was a char literal after all.
                        cursor.bump();
                        let mut single = true;
                        while let Some(m) = cursor.peek() {
                            if is_ident_continue(m) {
                                single = false;
                                cursor.bump();
                            } else {
                                break;
                            }
                        }
                        if cursor.peek() == Some('\'') {
                            // `'a'` or (degenerate) `'ab'`; consume the
                            // close only for a genuine single-char form —
                            // otherwise leave it to start the next token.
                            if single {
                                cursor.bump();
                            }
                        }
                    }
                    Some(_) => skip_quoted(&mut cursor, '\''),
                    None => {}
                }
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(n) = cursor.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                // Raw / byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#` — the "identifier" was a literal prefix.
                let prefix_is_raw = matches!(text.as_str(), "r" | "br");
                let prefix_is_byte = text == "b";
                if prefix_is_raw {
                    if let Some(hashes) = raw_fence(&mut cursor) {
                        skip_raw_string(&mut cursor, hashes);
                        continue;
                    }
                }
                if prefix_is_byte && cursor.peek() == Some('"') {
                    cursor.bump();
                    skip_quoted(&mut cursor, '"');
                    continue;
                }
                if prefix_is_byte && cursor.peek() == Some('\'') {
                    cursor.bump();
                    skip_quoted(&mut cursor, '\'');
                    continue;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
                last_token_line = line;
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(n) = cursor.peek() {
                    // Numeric literal bodies: digits, `_`, type suffixes,
                    // hex/exponent letters, and `.` only when followed by
                    // a digit (so `0..n` stays two range dots).
                    if n.is_ascii_alphanumeric() || n == '_' {
                        text.push(n);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text,
                    line,
                    col,
                });
                last_token_line = line;
            }
            _ => {
                cursor.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                    col,
                });
                last_token_line = line;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r##"
// mentions HashMap in a line comment
/* block HashMap /* nested HashMap */ still comment */
/// doc comment HashMap
let s = "HashMap in a string";
let r = r#"raw HashMap"#;
let b = b"byte HashMap";
let real = BTreeMap::new();
"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "ids: {ids:?}");
        assert!(ids.iter().any(|i| i == "BTreeMap"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a HashMap) -> char { 'x' }";
        let ids = idents(src);
        assert!(ids.iter().any(|i| i == "HashMap"));
        assert!(ids.iter().any(|i| i == "char"));
    }

    #[test]
    fn char_literals_with_escapes() {
        let src = r"let q = '\''; let n = '\n'; let real = Instant::now();";
        let ids = idents(src);
        assert!(ids.iter().any(|i| i == "Instant"));
        assert!(ids.iter().any(|i| i == "now"));
    }

    #[test]
    fn positions_are_one_based() {
        let s = scan("ab\n  cd");
        assert_eq!((s.tokens[0].line, s.tokens[0].col), (1, 1));
        assert_eq!((s.tokens[1].line, s.tokens[1].col), (2, 3));
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let s = scan("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(s.comments[0].trailing);
        assert!(!s.comments[1].trailing);
    }

    #[test]
    fn numbers_are_not_idents() {
        let s = scan("0usize..10");
        assert_eq!(s.tokens[0].kind, TokenKind::Number);
        assert_eq!(s.tokens[0].text, "0usize");
        // The two range dots survive as punctuation.
        assert!(s.tokens[1].is_punct('.') && s.tokens[2].is_punct('.'));
    }
}
