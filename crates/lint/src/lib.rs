//! `dr-lint` — the determinism static-analysis pass for this workspace.
//!
//! Everything the repo promises about reproducibility — bit-identical
//! schedule replay (`ReplayAdversary` + `RunReport::fingerprint`),
//! seed-equivalent parallel trials, 1-minimal chaos repros — rests on the
//! simulator and protocols being strictly deterministic. This crate makes
//! that a compiler-grade gate instead of a convention: it walks every
//! `.rs` file under `crates/`, tokenizes it with its own lightweight
//! lexer (no `syn`), and enforces repo-specific rules per crate tier:
//!
//! | rule | deterministic tier | tooling tier |
//! |---|---|---|
//! | `unordered-collections` | always | only in files touching `ScheduleTrace`/`RunReport` |
//! | `wall-clock` | always | — |
//! | `entropy-rng` | always | — |
//! | `missing-forbid-unsafe` | `lib.rs` roots | — |
//! | `bad-allow` | always | always |
//! | `payload-clone` | always | — |
//! | `raw-thread-spawn` | always | always (except `bench/src/plane/`) |
//! | `atomic-ordering` | always | always |
//! | `lock-discipline` | always | always |
//! | `sync-primitive-outside-facade` | always | always |
//!
//! The deterministic tier is `core`, `sim`, `protocols`, `oracle`; the
//! tooling tier is `bench`, `cli`, `runtime`, and `lint` itself.
//!
//! The three concurrency rules share two carve-outs: the sync facades
//! (`crates/bench/src/sync.rs`, `crates/sim/src/sync.rs`) and the plane
//! module are the sanctioned owners of raw primitives, and files driving
//! the vendored `loom` checker are the modelling layer itself. Everywhere
//! else, an explicit `Ordering::*`, a nested lock guard, or a raw
//! primitive construction needs an anchored
//! `dr-lint: allow(<rule>): <justification>`.
//!
//! Escape hatch: a comment of the form
//! `// dr-lint: allow(<rule>): <justification>` suppresses that rule on
//! its own line (trailing comment) or the next line (standalone comment).
//! The justification is mandatory — an allow without one is itself a
//! diagnostic.
//!
//! Run it with `cargo run -p dr-lint` (or `dr lint`); `--json` emits
//! machine-readable diagnostics with file:line:col spans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod tokenizer;

pub use rules::{
    check_source, ALL_RULES, RULE_ATOMIC_ORDERING, RULE_BAD_ALLOW, RULE_ENTROPY_RNG,
    RULE_FORBID_UNSAFE, RULE_LOCK_DISCIPLINE, RULE_PAYLOAD_CLONE, RULE_RAW_THREAD,
    RULE_SYNC_OUTSIDE_FACADE, RULE_UNORDERED, RULE_WALL_CLOCK,
};

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Crate tier controlling which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Crates whose behaviour must be a pure function of the seed:
    /// `core`, `sim`, `protocols`, `oracle`. Full rule set.
    Deterministic,
    /// Harness/driver crates (`bench`, `cli`, `runtime`, `lint`):
    /// wall clocks allowed; unordered maps flagged only where they feed
    /// the replay artifacts.
    Tooling,
}

impl Tier {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Deterministic => "deterministic",
            Tier::Tooling => "tooling",
        }
    }
}

/// Crates in the deterministic tier (directory names under `crates/`).
pub const DETERMINISTIC_CRATES: &[&str] = &["core", "sim", "protocols", "oracle"];

/// Classifies a crate directory name into its tier.
pub fn tier_of_crate(crate_dir: &str) -> Tier {
    if DETERMINISTIC_CRATES.contains(&crate_dir) {
        Tier::Deterministic
    } else {
        Tier::Tooling
    }
}

/// One finding with a `file:line:col` span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

/// Result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, ordered by (file, line, col).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

fn is_lib_rs(path: &Path) -> bool {
    path.file_name().is_some_and(|f| f == "lib.rs")
        && path.parent().is_some_and(|p| p.ends_with("src"))
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    // Deterministic traversal order (the linter practices what it
    // preaches: its own output order must not depend on readdir order).
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures/` holds intentional violations for self-tests;
            // `target/` holds build products.
            if name.starts_with('.') || name == "target" || name == "fixtures" {
                continue;
            }
            walk_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root (a directory containing both `Cargo.toml` and
/// `crates/`) starting from `start` and walking up.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Lints every `.rs` file under `<root>/crates/`, classifying each crate
/// into its tier by directory name.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    walk_rs_files(&crates_dir, &mut files)?;
    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        // `crates/<name>/...` → tier of `<name>`.
        let crate_dir = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        let tier = tier_of_crate(crate_dir);
        let source = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report
            .diagnostics
            .extend(check_source(&rel, &source, tier, is_lib_rs(&path)));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

/// Renders a human-readable report with fix suggestions.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}\n    fix: {}",
            d.file, d.line, d.col, d.rule, d.message, d.suggestion
        );
    }
    let _ = writeln!(
        out,
        "dr-lint: {} file(s) scanned, {} diagnostic(s)",
        report.files_scanned,
        report.diagnostics.len()
    );
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as machine-readable JSON (no external JSON crate in
/// the vendored registry, so this is hand-assembled — the shape is stable
/// and covered by tests).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let comma = if i + 1 == report.diagnostics.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"suggestion\": \"{}\"}}{}",
            json_escape(&d.file),
            d.line,
            d.col,
            d.rule,
            json_escape(&d.message),
            json_escape(&d.suggestion),
            comma
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_classification() {
        for c in ["core", "sim", "protocols", "oracle"] {
            assert_eq!(tier_of_crate(c), Tier::Deterministic);
        }
        for c in ["bench", "cli", "runtime", "lint", "unknown-crate"] {
            assert_eq!(tier_of_crate(c), Tier::Tooling);
        }
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn lib_rs_detection() {
        assert!(is_lib_rs(Path::new("crates/core/src/lib.rs")));
        assert!(!is_lib_rs(Path::new("crates/core/src/bits.rs")));
        assert!(!is_lib_rs(Path::new("crates/core/tests/lib.rs")));
    }
}
