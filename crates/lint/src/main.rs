//! `dr-lint` binary: lint the workspace's `crates/` tree for determinism
//! violations.
//!
//! ```text
//! dr-lint [--root <dir>] [--json]
//! ```
//!
//! Exits 0 when clean, 1 when diagnostics were found, 2 on usage or I/O
//! errors. `--json` prints the machine-readable report to stdout
//! (redirect it to produce a CI artifact).

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dr-lint — determinism static analysis for the DR workspace

USAGE:
  dr-lint [--root <dir>] [--json]

  --root <dir>   workspace root (default: nearest ancestor with Cargo.toml + crates/)
  --json         machine-readable diagnostics on stdout
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument '{other}'\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match dr_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root (Cargo.toml + crates/) above {cwd:?}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match dr_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", dr_lint::render_json(&report));
    } else {
        print!("{}", dr_lint::render_text(&report));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
