//! Self-tests: every rule must fire on its fixture and stay silent on
//! the clean ones, and the real workspace must lint clean.

use dr_lint::{check_source, Diagnostic, Tier};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn rule_count(diags: &[Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn hashmap_in_deterministic_tier_fires() {
    let src = fixture("unordered_in_protocols.rs");
    let diags = check_source(
        "crates/protocols/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    assert_eq!(rule_count(&diags, "unordered-collections"), 3, "{diags:?}");
    assert_eq!(diags.len(), 3);
    // Spans point at the offending identifiers.
    assert!(diags.iter().all(|d| d.line >= 3 && d.col > 1));
    assert!(diags.iter().any(|d| d.suggestion.contains("DetMap")));
    assert!(diags.iter().any(|d| d.suggestion.contains("DetSet")));
}

#[test]
fn wall_clock_in_sim_fires() {
    let src = fixture("wall_clock_in_sim.rs");
    let diags = check_source(
        "crates/sim/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    assert_eq!(rule_count(&diags, "wall-clock"), 3, "{diags:?}");
    assert_eq!(diags.len(), 3);
}

#[test]
fn entropy_rng_fires() {
    let src = fixture("entropy_rng.rs");
    let diags = check_source(
        "crates/protocols/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    // use-site thread_rng + call-site thread_rng + rand::random + from_entropy.
    assert_eq!(rule_count(&diags, "entropy-rng"), 4, "{diags:?}");
    assert_eq!(diags.len(), 4);
}

#[test]
fn payload_clone_fires_inside_send_calls_only() {
    let src = fixture("payload_clone.rs");
    let diags = check_source(
        "crates/protocols/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    // broadcast struct-literal clone + send struct-literal clone +
    // nested-call clone; the move-the-binding idiom, whole-message
    // clones, non-payload clones, and the free `fn send` stay silent.
    assert_eq!(rule_count(&diags, "payload-clone"), 3, "{diags:?}");
    assert_eq!(diags.len(), 3);
    assert!(
        diags.iter().all(|d| d.suggestion.contains("shared-buffer")),
        "{diags:?}"
    );
    // The rule is about replay-tier protocol code, not harness drivers.
    let diags = check_source("crates/bench/src/fixture.rs", &src, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "payload-clone"), 0, "{diags:?}");
}

#[test]
fn missing_forbid_unsafe_fires_only_on_lib_roots() {
    let src = fixture("lib_missing_forbid.rs");
    let diags = check_source("crates/core/src/lib.rs", &src, Tier::Deterministic, true);
    assert_eq!(rule_count(&diags, "missing-forbid-unsafe"), 1, "{diags:?}");
    assert_eq!((diags[0].line, diags[0].col), (1, 1));
    // The same file as a non-root module is fine.
    let diags = check_source("crates/core/src/util.rs", &src, Tier::Deterministic, false);
    assert!(diags.is_empty(), "{diags:?}");
    // And a tooling-tier lib.rs is not required to carry the attribute.
    let diags = check_source("crates/bench/src/lib.rs", &src, Tier::Tooling, true);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn valid_allow_suppresses_exactly_one_diagnostic() {
    let src = fixture("allowed_one.rs");
    let diags = check_source(
        "crates/sim/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    // Two HashMaps in the file; the annotated one is suppressed, the
    // other still fires, and the well-formed allow itself is silent.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "unordered-collections");
    assert!(src.matches("HashMap").count() >= 2);
}

#[test]
fn malformed_allows_are_diagnostics_and_do_not_suppress() {
    let src = fixture("bad_allow.rs");
    let diags = check_source(
        "crates/oracle/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    assert_eq!(rule_count(&diags, "bad-allow"), 2, "{diags:?}");
    // The HashMap under the justification-less allow is NOT suppressed.
    assert_eq!(rule_count(&diags, "unordered-collections"), 1, "{diags:?}");
}

#[test]
fn raw_thread_spawn_fires_in_both_tiers_but_not_in_the_plane() {
    let src = fixture("raw_thread_spawn.rs");
    // spawn + scope + Builder fire; the allowed watchdog Builder is
    // suppressed; Command::spawn and thread::sleep stay silent.
    let diags = check_source("crates/bench/src/fixture.rs", &src, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "raw-thread-spawn"), 3, "{diags:?}");
    assert_eq!(diags.len(), 3);
    assert!(
        diags
            .iter()
            .all(|d| d.suggestion.contains("dr_bench::plane")),
        "{diags:?}"
    );
    // Deterministic-tier code gets the same treatment.
    let diags = check_source(
        "crates/sim/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    assert_eq!(rule_count(&diags, "raw-thread-spawn"), 3, "{diags:?}");
    // The plane itself is the sanctioned owner of OS threads — both the
    // old single-file path and the module directory it grew into.
    let diags = check_source("crates/bench/src/plane.rs", &src, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "raw-thread-spawn"), 0, "{diags:?}");
    let diags = check_source("crates/bench/src/plane/core.rs", &src, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "raw-thread-spawn"), 0, "{diags:?}");
}

#[test]
fn loom_thread_spawn_is_model_threads_not_os_threads() {
    // `loom::thread::spawn` creates threads *inside* the model checker;
    // only unqualified/std spawns compete with the plane for cores.
    let model = "fn m() { let h = loom::thread::spawn(|| 1); h.join().unwrap(); }";
    let diags = check_source("crates/bench/tests/fixture.rs", model, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "raw-thread-spawn"), 0, "{diags:?}");
    let os = "fn m() { std::thread::spawn(|| 1); }";
    let diags = check_source("crates/bench/tests/fixture.rs", os, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "raw-thread-spawn"), 1, "{diags:?}");
}

#[test]
fn atomic_ordering_fires_at_call_sites_not_imports() {
    let src = fixture("atomic_ordering.rs");
    let diags = check_source(
        "crates/core/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    // Relaxed store + Acquire load + SeqCst store; the two `use` lines,
    // the allowed Release, and the bare-ident gap stay silent.
    assert_eq!(rule_count(&diags, "atomic-ordering"), 3, "{diags:?}");
    assert_eq!(diags.len(), 3);
    assert!(
        diags.iter().any(|d| d.message.contains("lazy default")),
        "SeqCst should get the lazy-default message: {diags:?}"
    );
    // The rule polices both tiers.
    let diags = check_source("crates/bench/src/fixture.rs", &src, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "atomic-ordering"), 3, "{diags:?}");
    // The facade is exempt by path; model-checking files by their
    // `loom::` imports (loom collapses every ordering to SeqCst anyway).
    let diags = check_source("crates/bench/src/sync.rs", &src, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "atomic-ordering"), 0, "{diags:?}");
    let model_src = format!("use loom::sync::atomic::Ordering;\n{src}");
    let diags = check_source(
        "crates/bench/tests/fixture.rs",
        &model_src,
        Tier::Tooling,
        false,
    );
    assert_eq!(rule_count(&diags, "atomic-ordering"), 0, "{diags:?}");
}

#[test]
fn lock_discipline_flags_nested_guards_only() {
    let src = fixture("lock_discipline.rs");
    let diags = check_source(
        "crates/sim/src/fixture.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    // Nested mutex guards + RwLock write under a live mutex guard; the
    // drop-released, block-scoped, temporary, and allowed variants are
    // silent.
    assert_eq!(rule_count(&diags, "lock-discipline"), 2, "{diags:?}");
    assert_eq!(diags.len(), 2);
    assert!(
        diags.iter().all(|d| d.message.contains("`ga`")),
        "{diags:?}"
    );
    // Without an RwLock in the file, `.write()` is just io.
    let io = "fn f(w: &mut impl std::io::Write, m: &std::sync::Mutex<u32>) {\n\
              \x20   let g = m.lock().unwrap();\n\
              \x20   w.write(&[*g as u8]).unwrap();\n}\n";
    let diags = check_source("crates/cli/src/fixture.rs", io, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "lock-discipline"), 0, "{diags:?}");
}

#[test]
fn sync_primitive_construction_needs_the_facade() {
    let src = fixture("sync_outside_facade.rs");
    let diags = check_source("crates/runtime/src/fixture.rs", &src, Tier::Tooling, false);
    // Mutex::new + Condvar::new + AtomicU64::new on the construction
    // line; the justified one and the mere-use function are silent.
    assert_eq!(
        rule_count(&diags, "sync-primitive-outside-facade"),
        3,
        "{diags:?}"
    );
    assert_eq!(diags.len(), 3);
    // Exempt by path: the plane module and the facades themselves.
    let diags = check_source("crates/bench/src/plane/core.rs", &src, Tier::Tooling, false);
    assert_eq!(rule_count(&diags, "sync-primitive-outside-facade"), 0);
    let diags = check_source("crates/sim/src/sync.rs", &src, Tier::Deterministic, false);
    assert_eq!(rule_count(&diags, "sync-primitive-outside-facade"), 0);
    // Exempt by import: construction routed through a crate's facade.
    let routed = format!("use crate::sync::Mutex;\n{src}");
    let diags = check_source(
        "crates/sim/src/fixture.rs",
        &routed,
        Tier::Deterministic,
        false,
    );
    assert_eq!(
        rule_count(&diags, "sync-primitive-outside-facade"),
        0,
        "{diags:?}"
    );
}

#[test]
fn clean_deterministic_file_is_clean() {
    let src = fixture("clean_deterministic.rs");
    let diags = check_source("crates/core/src/lib.rs", &src, Tier::Deterministic, true);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn tooling_tier_flags_unordered_only_near_replay_artifacts() {
    let feeds = fixture("tooling_feeds_replay.rs");
    let diags = check_source("crates/bench/src/fixture.rs", &feeds, Tier::Tooling, false);
    assert!(
        rule_count(&diags, "unordered-collections") >= 1,
        "{diags:?}"
    );
    // Wall clocks are allowed in the tooling tier even here.
    assert_eq!(rule_count(&diags, "wall-clock"), 0, "{diags:?}");

    let plain = fixture("tooling_plain.rs");
    let diags = check_source("crates/cli/src/fixture.rs", &plain, Tier::Tooling, false);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn the_workspace_itself_lints_clean() {
    // The gate the CI job enforces, as a plain test: the real tree under
    // crates/ has zero diagnostics.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dr_lint::lint_workspace(&root).expect("walk workspace");
    assert!(
        report.files_scanned > 40,
        "only {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace has determinism diagnostics:\n{}",
        dr_lint::render_text(&report)
    );
}

#[test]
fn json_report_has_spans_and_is_parseable_shape() {
    let src = fixture("unordered_in_protocols.rs");
    let diags = check_source(
        "crates/protocols/src/x.rs",
        &src,
        Tier::Deterministic,
        false,
    );
    let report = dr_lint::Report {
        files_scanned: 1,
        diagnostics: diags,
    };
    let json = dr_lint::render_json(&report);
    assert!(json.contains("\"files_scanned\": 1"));
    assert!(json.contains("\"rule\": \"unordered-collections\""));
    assert!(json.contains("\"file\": \"crates/protocols/src/x.rs\""));
    assert!(json.contains("\"line\": "));
    // Balanced braces/brackets as a cheap well-formedness check.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
