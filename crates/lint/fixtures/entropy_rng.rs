// Fixture: entropy-seeded randomness in a deterministic-tier file.
// Expected: `entropy-rng` diagnostics for thread_rng, rand::random, and
// from_entropy.
use rand::thread_rng;

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    let x: u64 = rand::random();
    let seeded = rand::rngs::StdRng::from_entropy();
    let _ = (rng, seeded);
    x
}
