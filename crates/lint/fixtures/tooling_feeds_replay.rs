// Fixture: tooling-tier file that touches the replay artifacts — here
// the unordered map IS flagged even though wall clocks are fine.
use dr_sim::{RunReport, ScheduleTrace};
use std::collections::HashMap;
use std::time::Instant;

pub fn summarize(reports: &[RunReport], traces: &[ScheduleTrace]) -> usize {
    let started = Instant::now();
    let mut by_fingerprint: HashMap<u64, usize> = HashMap::new();
    for r in reports {
        *by_fingerprint.entry(r.fingerprint()).or_insert(0) += 1;
    }
    let _ = (started, traces);
    by_fingerprint.len()
}
