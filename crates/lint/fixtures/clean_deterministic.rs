#![forbid(unsafe_code)]
//! Fixture: a clean deterministic-tier crate root. Mentions of HashMap,
//! Instant::now, and thread_rng in comments and strings must not fire.

use dr_core::collections::{DetMap, DetSet};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Docs may say HashMap or SystemTime freely.
pub struct State {
    counts: DetMap<u32, u64>,
    seen: DetSet<u32>,
    extra: BTreeMap<String, BTreeSet<u8>>,
    budget: Duration,
}

pub fn describe() -> &'static str {
    "uses HashMap? no. calls Instant::now()? no. thread_rng? also no."
}
