//! Fixture: ad-hoc OS threads that bypass the unified execution plane.
//! Three violations (`thread::spawn`, `thread::scope`, `thread::Builder`),
//! one justified allow, and look-alikes that must stay silent.

use std::thread;

fn fans_out_by_hand(jobs: Vec<Box<dyn FnOnce() + Send>>) {
    // VIOLATION: a raw spawn per job is an ad-hoc pool.
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|job| std::thread::spawn(job))
        .collect();
    for h in handles {
        let _ = h.join();
    }
}

fn scoped_pool(xs: &mut [u64]) {
    // VIOLATION: a scoped pool still competes with the plane's workers.
    thread::scope(|s| {
        for x in xs.iter_mut() {
            s.spawn(|| *x += 1);
        }
    });
}

fn named_worker() {
    // VIOLATION: Builder is just spawn with a name.
    let _ = thread::Builder::new().name("side-pool".into());
}

fn sanctioned_watchdog() {
    // dr-lint: allow(raw-thread-spawn): watchdog must outlive the pool it monitors
    let _ = thread::Builder::new().name("watchdog".into());
}

fn not_violations() {
    // A subprocess spawn is not a thread.
    let _ = std::process::Command::new("true").spawn();
    // Sleeping the current thread spawns nothing.
    thread::sleep(std::time::Duration::from_millis(1));
}
