//! Fixture: a deterministic-tier crate root without the mandatory
//! `#![forbid(unsafe_code)]`. Expected: one `missing-forbid-unsafe`
//! diagnostic at 1:1.

pub fn fine() -> usize {
    42
}
