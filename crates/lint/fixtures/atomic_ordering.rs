//! Fixture: `atomic-ordering` — imports stay silent, call sites fire
//! (with `SeqCst` called out as the lazy default), and a justified allow
//! suppresses exactly its line.

use std::sync::atomic::Ordering;
use std::sync::atomic::Ordering::Relaxed;

fn violations(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, Ordering::Relaxed);
    let _ = flag.load(Ordering::Acquire);
    flag.store(false, Ordering::SeqCst);
}

fn justified(flag: &std::sync::atomic::AtomicBool) {
    // dr-lint: allow(atomic-ordering): fixture flag orders nothing; exactness is all that matters
    flag.store(true, Ordering::Release);
}

fn bare_import_is_an_accepted_gap(flag: &std::sync::atomic::AtomicBool) {
    // A bare `Relaxed` (imported above) has no `Ordering::` path for the
    // tokenizer to anchor on; the audit keeps call sites path-qualified.
    flag.store(true, Relaxed);
}
