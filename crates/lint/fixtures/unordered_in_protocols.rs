// Fixture: unordered collections in a deterministic-tier file.
// Expected: two `unordered-collections` diagnostics (HashMap, HashSet).
use std::collections::HashMap;

pub struct Tally {
    votes: HashMap<usize, usize>,
    seen: std::collections::HashSet<u32>,
}
