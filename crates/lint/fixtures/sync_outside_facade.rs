//! Fixture: `sync-primitive-outside-facade` — raw primitive construction
//! fires; use (not construction) of a primitive is silent; a justified
//! allow suppresses. The file-scoped exemptions (the facades, the plane,
//! facade-routed importers, loom-driving model code) are exercised inline
//! by the tests, since they key off the file path or the import set.

use std::sync::atomic::AtomicU64;
use std::sync::{Condvar, Mutex};

fn raw_construction_fires() -> (Mutex<u32>, Condvar, AtomicU64) {
    (Mutex::new(0), Condvar::new(), AtomicU64::new(0))
}

fn justified_construction() -> Mutex<u32> {
    // dr-lint: allow(sync-primitive-outside-facade): fixture primitive that genuinely cannot swap to loom
    Mutex::new(0)
}

fn mere_use_is_clean(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
