// Fixture: malformed allow comments. Expected: `bad-allow` diagnostics
// for the justification-less allow and the unknown rule name, and the
// HashMap they fail to cover is still reported.

pub struct S {
    // dr-lint: allow(unordered-collections)
    a: std::collections::HashMap<u8, u8>,
    // dr-lint: allow(made-up-rule): not a real rule
    b: u8,
}
