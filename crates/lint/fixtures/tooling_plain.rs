// Fixture: tooling-tier file with no replay artifacts in sight — the
// unordered map and the wall clock are both fine here.
use std::collections::HashMap;
use std::time::Instant;

pub fn tally(words: &[String]) -> usize {
    let t0 = Instant::now();
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for w in words {
        *counts.entry(w.as_str()).or_insert(0) += 1;
    }
    let _ = t0.elapsed();
    counts.len()
}
