// Fixture: wall-clock reads in a deterministic-tier file.
// Expected: `wall-clock` diagnostics for Instant, SystemTime, and the
// std::time glob import.
use std::time::*;

pub fn measure() -> u128 {
    let t0 = Instant::now();
    let epoch = SystemTime::now();
    let _ = epoch;
    t0.elapsed().as_nanos()
}
