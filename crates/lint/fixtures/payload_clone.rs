//! Fixture for the `payload-clone` rule: payload-named bindings cloned
//! inside `send`/`broadcast` call expressions fire; the move-the-binding
//! idiom and whole-message clones stay silent.

fn step(&mut self, ctx: &mut dyn Context<Msg>) {
    // FLAG: payload cloned inside a broadcast call expression.
    ctx.broadcast(Msg::Full { bits: bits.clone() });
    // FLAG: payload cloned inside a send call, nested in a struct literal.
    ctx.send(PeerId(p), Msg::Has { values: values.clone() });
    // FLAG: still inside the call's parens, one level of nesting deeper.
    ctx.send(to, wrap(payload.clone()));

    // Clean: the retained copy is cloned outside the call; the payload
    // binding moves into the message.
    self.out = Some(bits.clone());
    ctx.broadcast(Msg::Full { bits });
    // Clean: per-recipient clone of the whole message value.
    let msg = Msg::Final { bits };
    ctx.send(PeerId(p), msg.clone());
    // Clean: clone on a non-payload binding inside the call.
    ctx.send(PeerId(p), header.clone());
}

// Clean: a free function named `send` is not a method call expression.
fn send(bits: BitArray) -> BitArray {
    bits.clone()
}
