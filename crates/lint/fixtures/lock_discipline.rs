//! Fixture: `lock-discipline` — acquiring a lock while another guard
//! binding is live fires; drop-released, block-scoped, and
//! statement-temporary locking stays silent; an allow with a stated lock
//! order suppresses.

use std::sync::{Mutex, RwLock};

fn nested_guards_fire(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    let _ = (*ga, *gb);
}

fn drop_released_is_clean(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().unwrap();
    drop(ga);
    let gb = b.lock().unwrap();
    drop(gb);
}

fn block_scoped_is_clean(a: &Mutex<u32>, b: &Mutex<u32>) {
    {
        let _ga = a.lock().unwrap();
    }
    let _gb = b.lock().unwrap();
}

fn statement_temporaries_are_clean(a: &Mutex<Vec<u32>>, b: &Mutex<Vec<u32>>) {
    a.lock().unwrap().push(1);
    b.lock().unwrap().push(2);
}

fn write_guard_under_mutex_fires(a: &Mutex<u32>, r: &RwLock<u32>) {
    let ga = a.lock().unwrap();
    let w = r.write().unwrap();
    let _ = (*ga, *w);
}

fn stated_order_is_justified(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().unwrap();
    // dr-lint: allow(lock-discipline): fixture-wide lock order is a before b, everywhere
    let gb = b.lock().unwrap();
    let _ = (*ga, *gb);
}
