// Fixture: a valid allow comment suppresses exactly one diagnostic; the
// second HashMap is still reported.
use std::collections::BTreeMap;

pub struct Caches {
    // dr-lint: allow(unordered-collections): never iterated, keys looked up individually
    warm: std::collections::HashMap<u32, u32>,
    cold: std::collections::HashMap<u32, u32>,
    sound: BTreeMap<u32, u32>,
}
