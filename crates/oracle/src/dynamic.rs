//! Dynamic data: the open problem at the end of §4, demonstrated.
//!
//! The Download protocols assume the source is *static*: "for two honest
//! peers, if both issue the same query, they get the same result". Real
//! oracle feeds drift. [`DriftingSource`] is a bit source whose contents
//! change after a fixed number of total queries — running any Download
//! protocol over it shows exactly why the paper leaves dynamic data open:
//! peers that query the same position at different times learn different
//! values, and their outputs (all internally consistent!) disagree with
//! each other and with any fixed snapshot.

use dr_core::{BitArray, Source};
use std::sync::atomic::{AtomicU64, Ordering};

/// A bit source that serves `before` until `drift_after` total queries
/// have been made (across all peers), then serves `after`.
///
/// This deliberately violates the DR model's static-data assumption; it
/// exists to *demonstrate* the violation's consequences, not to be used
/// under protocols that assume the model.
#[derive(Debug)]
pub struct DriftingSource {
    before: BitArray,
    after: BitArray,
    drift_after: u64,
    served: AtomicU64,
}

impl DriftingSource {
    /// Creates a source that drifts from `before` to `after` once
    /// `drift_after` queries have been served.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length.
    pub fn new(before: BitArray, after: BitArray, drift_after: u64) -> Self {
        assert_eq!(before.len(), after.len(), "length mismatch");
        DriftingSource {
            before,
            after,
            drift_after,
            // dr-lint: allow(sync-primitive-outside-facade): single counter driving the drift cutover; exercised single-threaded by the simulator
            served: AtomicU64::new(0),
        }
    }

    /// Queries served so far.
    pub fn served(&self) -> u64 {
        // dr-lint: allow(atomic-ordering): diagnostic read; no memory is published through this counter
        self.served.load(Ordering::Relaxed)
    }
}

impl Source for DriftingSource {
    fn len(&self) -> usize {
        self.before.len()
    }

    fn bit(&self, index: usize) -> bool {
        // dr-lint: allow(atomic-ordering): the cutover only needs the counter itself to be exact, not to order other memory
        let count = self.served.fetch_add(1, Ordering::Relaxed);
        if count < self.drift_after {
            self.before.get(index)
        } else {
            self.after.get(index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::{FaultModel, ModelParams};
    use dr_protocols::CrashMultiDownload;
    use dr_sim::SimBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drifting_source_changes_answers() {
        let before = BitArray::zeros(8);
        let after = BitArray::from_fn(8, |_| true);
        let s = DriftingSource::new(before, after, 3);
        assert!(!s.bit(0));
        assert!(!s.bit(0));
        assert!(!s.bit(0));
        assert!(s.bit(0)); // drifted
        assert_eq!(s.served(), 4);
    }

    #[test]
    fn download_over_drifting_data_breaks_agreement() {
        // The §4 open problem: run Algorithm 2 over a source that drifts
        // mid-execution. Every peer terminates (liveness is untouched),
        // but across seeds some peers disagree with the final snapshot or
        // with each other — the exact guarantee the static assumption
        // buys.
        let (n, k, b) = (512usize, 8usize, 2usize);
        let mut any_disagreement = false;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let before = BitArray::random(n, &mut rng);
            let mut after = before.clone();
            for j in (0..n).step_by(7) {
                after.flip(j);
            }
            // Drift midway through phase 1, while the initial shares are
            // still being queried (later drifts can be masked by the
            // first terminator's Final broadcast re-synchronizing
            // everyone on its — pre-drift — snapshot).
            let drift_at = (n / 2) as u64;
            let params = ModelParams::builder(n, k)
                .faults(FaultModel::Crash, b)
                .build()
                .unwrap();
            let sim = SimBuilder::new(params)
                .seed(seed)
                .source(
                    DriftingSource::new(before.clone(), after.clone(), drift_at),
                    before.clone(),
                )
                .protocol(move |_| CrashMultiDownload::new(n, k, b))
                .build();
            let report = sim.run().expect("liveness is unaffected by drift");
            // Disagreement: either an output differs from the pre-drift
            // snapshot, or two outputs differ from each other.
            let outputs: Vec<&BitArray> = (0..k)
                .map(|p| report.outputs[p].as_ref().expect("terminated"))
                .collect();
            let snapshot_mismatch = outputs.iter().any(|o| **o != before);
            let peer_mismatch = outputs.windows(2).any(|w| w[0] != w[1]);
            any_disagreement |= snapshot_mismatch || peer_mismatch;
        }
        assert!(
            any_disagreement,
            "drifting data should break Download agreement in at least one seed"
        );
    }
}
