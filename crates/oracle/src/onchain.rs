//! The on-chain component: a minimal aggregation contract.
//!
//! The on-chain side of a blockchain oracle receives one report per oracle
//! node and publishes a final value per cell. We abstract steps (2) and
//! (3) of the oracle pipeline (agreement + publication) as the paper does:
//! the contract collects reports and publishes the per-cell median, which
//! keeps the published value in the honest range as long as strictly
//! fewer than half the reports are adversarial.

use crate::median::median;

/// A minimal on-chain aggregation contract.
#[derive(Debug)]
pub struct Contract {
    cells: usize,
    reports: Vec<Vec<u64>>,
}

impl Contract {
    /// Creates a contract expecting reports of `cells` values.
    pub fn new(cells: usize) -> Self {
        Contract {
            cells,
            reports: Vec::new(),
        }
    }

    /// Submits one node's report. Malformed reports (wrong arity) are
    /// rejected, mirroring on-chain validation.
    ///
    /// Returns `true` if the report was accepted.
    pub fn submit(&mut self, report: Vec<u64>) -> bool {
        if report.len() == self.cells {
            self.reports.push(report);
            true
        } else {
            false
        }
    }

    /// Number of accepted reports.
    pub fn report_count(&self) -> usize {
        self.reports.len()
    }

    /// Publishes the final per-cell values (median across reports).
    ///
    /// # Panics
    ///
    /// Panics if no reports were accepted.
    pub fn publish(&self) -> Vec<u64> {
        assert!(!self.reports.is_empty(), "no reports to publish");
        (0..self.cells)
            .map(|c| {
                let col: Vec<u64> = self.reports.iter().map(|r| r[c]).collect();
                median(&col)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_malformed_reports() {
        let mut c = Contract::new(3);
        assert!(!c.submit(vec![1, 2]));
        assert!(c.submit(vec![1, 2, 3]));
        assert_eq!(c.report_count(), 1);
    }

    #[test]
    fn publishes_per_cell_median() {
        let mut c = Contract::new(2);
        c.submit(vec![10, 100]);
        c.submit(vec![20, 200]);
        c.submit(vec![30, 300]);
        assert_eq!(c.publish(), vec![20, 200]);
    }

    #[test]
    fn minority_garbage_reports_filtered() {
        let mut c = Contract::new(1);
        for _ in 0..3 {
            c.submit(vec![50]);
        }
        c.submit(vec![u64::MAX]);
        c.submit(vec![0]);
        assert_eq!(c.publish(), vec![50]);
    }

    #[test]
    #[should_panic(expected = "no reports")]
    fn empty_publish_panics() {
        Contract::new(1).publish();
    }
}
