//! Bridge from value-level [`DataSource`]s to the bit-level
//! [`dr_core::Source`] world, so oracle pipelines can read through the
//! query admission plane.
//!
//! One cell is one [`BITS_PER_VALUE`]-bit little-endian word — exactly the
//! encoding [`crate::values_to_bits`] uses and exactly one admission-plane
//! cache word, so a `CachedSource` over a [`ValueSourceBits`] fetches each
//! cell from the underlying data source **at most once** no matter how
//! many oracle nodes read it.

use crate::encode::BITS_PER_VALUE;
use crate::source::DataSource;
use dr_core::{BitArray, PeerId, Source};
use std::ops::Range;
use std::sync::Arc;

/// A [`DataSource`] viewed as an `n = cells × 64` bit array.
///
/// All reads are issued as `reader` — the bridge is meant for static
/// (non-equivocating) sources, where the reader identity is irrelevant;
/// the Download pipeline's correctness assumptions (§4 static data)
/// already require this.
#[derive(Clone)]
pub struct ValueSourceBits {
    source: Arc<dyn DataSource>,
    reader: PeerId,
}

impl ValueSourceBits {
    /// Wraps `source`, issuing reads as `reader`.
    pub fn new(source: Arc<dyn DataSource>, reader: PeerId) -> Self {
        ValueSourceBits { source, reader }
    }
}

impl std::fmt::Debug for ValueSourceBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ValueSourceBits[{} cells as {} bits]",
            self.source.cells(),
            self.len()
        )
    }
}

impl Source for ValueSourceBits {
    fn len(&self) -> usize {
        self.source.cells() * BITS_PER_VALUE
    }

    fn bit(&self, index: usize) -> bool {
        let value = self.source.read(self.reader, index / BITS_PER_VALUE);
        (value >> (index % BITS_PER_VALUE)) & 1 == 1
    }

    fn bits(&self, range: Range<usize>) -> BitArray {
        // One cell read per touched word instead of one per bit; the
        // cross-word shift mirrors `ChunkedSource::bits`.
        if range.is_empty() {
            return BitArray::zeros(0);
        }
        let w0 = range.start / 64;
        let w1 = range.end.div_ceil(64);
        let cells: Vec<u64> = (w0..w1)
            .map(|w| self.source.read(self.reader, w))
            .collect();
        let sh = range.start % 64;
        let out_len = range.len();
        let words: Vec<u64> = (0..out_len.div_ceil(64))
            .map(|r| {
                let lo = cells[r] >> sh;
                if sh == 0 {
                    lo
                } else {
                    lo | cells.get(r + 1).copied().unwrap_or(0) << (64 - sh)
                }
            })
            .collect();
        BitArray::from_words(out_len, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::values_to_bits;
    use crate::source::HonestSource;
    use dr_core::CachedSource;

    fn bridge(values: Vec<u64>) -> (ValueSourceBits, BitArray) {
        let reference = values_to_bits(&values);
        (
            ValueSourceBits::new(Arc::new(HonestSource::new(values)), PeerId(0)),
            reference,
        )
    }

    #[test]
    fn bridge_matches_values_to_bits() {
        let (src, reference) = bridge(vec![u64::MAX, 0, 0xdead_beef, 1 << 63]);
        assert_eq!(src.len(), 256);
        assert_eq!(Source::bits(&src, 0..256), reference);
        for range in [0..1, 63..65, 1..200, 128..256] {
            assert_eq!(
                Source::bits(&src, range.clone()),
                reference.slice(range.clone()),
                "range {range:?}"
            );
        }
        // Per-bit path agrees with the word path.
        for i in (0..256).step_by(7) {
            assert_eq!(src.bit(i), reference.get(i));
        }
    }

    #[test]
    fn cached_bridge_reads_each_cell_once() {
        let (src, reference) = bridge((0..32).map(|i| i * 31 + 7).collect());
        let cache = CachedSource::new(src, 4);
        // Many overlapping reads, as k peers would issue.
        for _ in 0..5 {
            assert_eq!(Source::bits(&cache, 0..2048), reference);
            assert_eq!(Source::bits(&cache, 512..1536), reference.slice(512..1536));
        }
        assert_eq!(cache.stats().upstream_bits, 2048);
    }
}
