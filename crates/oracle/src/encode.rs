//! Encoding oracle value arrays as bit arrays.
//!
//! The Download protocols operate on bit arrays; oracle sources store
//! 64-bit values. The paper notes the binary protocol "can be extended to
//! numbers via a relatively simple extension" — this module is that
//! extension: a little-endian fixed-width encoding in both directions.

use dr_core::BitArray;

/// Bits per encoded value.
pub const BITS_PER_VALUE: usize = 64;

/// Encodes values as a bit array (64 bits per value, little-endian).
pub fn values_to_bits(values: &[u64]) -> BitArray {
    let mut bits = BitArray::zeros(values.len() * BITS_PER_VALUE);
    for (i, &v) in values.iter().enumerate() {
        for b in 0..BITS_PER_VALUE {
            if v >> b & 1 == 1 {
                bits.set(i * BITS_PER_VALUE + b, true);
            }
        }
    }
    bits
}

/// Decodes a bit array back into values.
///
/// # Panics
///
/// Panics if the length is not a multiple of 64.
pub fn bits_to_values(bits: &BitArray) -> Vec<u64> {
    assert!(
        bits.len().is_multiple_of(BITS_PER_VALUE),
        "bit length {} not a multiple of {BITS_PER_VALUE}",
        bits.len()
    );
    (0..bits.len() / BITS_PER_VALUE)
        .map(|i| {
            let mut v = 0u64;
            for b in 0..BITS_PER_VALUE {
                if bits.get(i * BITS_PER_VALUE + b) {
                    v |= 1 << b;
                }
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let values = vec![0u64, 1, u64::MAX, 0xdead_beef, 42];
        assert_eq!(bits_to_values(&values_to_bits(&values)), values);
    }

    #[test]
    fn empty_roundtrip() {
        let values: Vec<u64> = vec![];
        assert_eq!(bits_to_values(&values_to_bits(&values)), values);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_decode_panics() {
        bits_to_values(&BitArray::zeros(65));
    }
}
