//! Oracle Data Collection pipelines: baseline vs Download-based (§4).
//!
//! Both pipelines read off-chain sources, aggregate per-node by median,
//! submit node reports to the on-chain [`Contract`](crate::Contract), and
//! publish the per-cell median — the difference is step (1):
//!
//! * **Baseline ODC** (Theorem 4.1): every node independently samples `q`
//!   sources and reads *all* their cells — `k·q·cells` value reads in
//!   total, with redundant reads of the same data by every node.
//! * **Download-based ODC** (Theorem 4.2): the nodes run one Download
//!   instance per source, sharing the read workload; each honest node
//!   ends up with *exactly* the source's array (for honest sources),
//!   at a per-source cost of `O(cells/k)` reads per node instead of
//!   `cells` — a ~`q·k/m`-fold total saving at equal (indeed stronger)
//!   output guarantees.

use crate::bridge::ValueSourceBits;
use crate::encode::{bits_to_values, values_to_bits, BITS_PER_VALUE};
use crate::median::median;
use crate::onchain::Contract;
use crate::source::SourceFleet;
use dr_core::{CachedSource, FaultModel, ModelParams, PeerId};
use dr_protocols::{CrashMultiDownload, TwoCycleDownload};
use dr_sim::{SilentAgent, SimBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration of an oracle deployment.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Number of oracle nodes `k`.
    pub nodes: usize,
    /// Byzantine oracle nodes (must stay below `nodes/2` for the final
    /// median to be sound).
    pub byz_nodes: usize,
    /// Honest data sources.
    pub honest_sources: usize,
    /// Corrupt (static-lying) data sources.
    pub corrupt_sources: usize,
    /// Value cells per source.
    pub cells: usize,
    /// Ground-truth magnitude.
    pub truth_base: u64,
    /// Honest-source noise spread.
    pub spread: u64,
    /// Master seed.
    pub seed: u64,
}

impl OracleConfig {
    /// Total number of sources.
    pub fn sources(&self) -> usize {
        self.honest_sources + self.corrupt_sources
    }
}

/// Which Download protocol powers the Download-based pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownloadEngine {
    /// Algorithm 2 — appropriate when oracle nodes only crash.
    CrashMulti,
    /// The 2-cycle randomized protocol — tolerates Byzantine nodes
    /// (`β < 1/2`).
    TwoCycle,
}

/// Outcome of one ODC pipeline run.
#[derive(Debug, Clone)]
pub struct OdcOutcome {
    /// Values published on-chain, one per cell.
    pub published: Vec<u64>,
    /// Total source-read cost over honest nodes, in bits (one value read
    /// = 64 bits). This is the paper's per-node-attributed query measure
    /// summed over nodes, *before* cross-node amortization.
    pub total_read_bits: u64,
    /// Maximum read cost of any single honest node, in bits.
    pub max_node_read_bits: u64,
    /// Bits actually pulled from the data sources by the collection
    /// phase. For the baseline this equals [`OdcOutcome::total_read_bits`]
    /// (every node reads upstream directly); for the Download-based
    /// pipeline the nodes share one query admission plane per source, so
    /// redundant reads are served from cache and this is at most
    /// `sources × cells × 64` regardless of fleet size.
    pub upstream_read_bits: u64,
    /// Cells whose published value left the honest range (ODD
    /// violations).
    pub odd_violations: usize,
}

impl OdcOutcome {
    /// Whether the ODD specification held for every cell.
    pub fn odd_satisfied(&self) -> bool {
        self.odd_violations == 0
    }
}

fn garbage_report(cells: usize, salt: u64) -> Vec<u64> {
    (0..cells)
        .map(|c| (salt ^ c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect()
}

fn finalize(
    config: &OracleConfig,
    fleet: &SourceFleet,
    honest_reports: Vec<Vec<u64>>,
    total_read_bits: u64,
    max_node_read_bits: u64,
    upstream_read_bits: u64,
) -> OdcOutcome {
    let mut contract = Contract::new(config.cells);
    for report in honest_reports {
        contract.submit(report);
    }
    for i in 0..config.byz_nodes {
        contract.submit(garbage_report(config.cells, config.seed ^ i as u64));
    }
    let published = contract.publish();
    let odd_violations = (0..config.cells)
        .filter(|&c| {
            let (lo, hi) = fleet.honest_range(c);
            !(lo..=hi).contains(&published[c])
        })
        .count();
    OdcOutcome {
        published,
        total_read_bits,
        max_node_read_bits,
        upstream_read_bits,
        odd_violations,
    }
}

/// The baseline ODC pipeline (Theorem 4.1): each node samples `q` sources
/// and reads everything itself.
///
/// # Panics
///
/// Panics if `q` is zero or exceeds the number of sources.
pub fn run_baseline(config: &OracleConfig, q: usize) -> OdcOutcome {
    let fleet = SourceFleet::generate(
        config.honest_sources,
        config.corrupt_sources,
        config.cells,
        config.truth_base,
        config.spread,
        config.seed,
    );
    run_baseline_on(&fleet, config, q)
}

/// As [`run_baseline`] but over an explicit fleet (e.g. one containing
/// [`EquivocatingSource`](crate::EquivocatingSource)s).
///
/// # Panics
///
/// Panics if `q` is zero or exceeds the number of sources.
pub fn run_baseline_on(fleet: &SourceFleet, config: &OracleConfig, q: usize) -> OdcOutcome {
    let m = fleet.len();
    assert!(q >= 1 && q <= m, "q must be in 1..=sources");
    let honest_nodes = config.nodes - config.byz_nodes;
    let mut reports = Vec::with_capacity(honest_nodes);
    let mut total_read_bits = 0u64;
    let mut max_node_read_bits = 0u64;
    for node in 0..honest_nodes {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(100 + node as u64));
        // Sample q distinct sources.
        let mut picked: Vec<usize> = Vec::new();
        while picked.len() < q {
            let s = rng.gen_range(0..m);
            if !picked.contains(&s) {
                picked.push(s);
            }
        }
        let mut report = Vec::with_capacity(config.cells);
        for c in 0..config.cells {
            let readings: Vec<u64> = picked
                .iter()
                .map(|&s| fleet.source(s).read(PeerId(node), c))
                .collect();
            report.push(median(&readings));
        }
        let node_bits = (q * config.cells * BITS_PER_VALUE) as u64;
        total_read_bits += node_bits;
        max_node_read_bits = max_node_read_bits.max(node_bits);
        reports.push(report);
    }
    // Baseline nodes read upstream directly: no amortization.
    finalize(
        config,
        fleet,
        reports,
        total_read_bits,
        max_node_read_bits,
        total_read_bits,
    )
}

/// Runs one Download instance with peer queries routed through `cache`
/// (the per-source admission plane). Byzantine oracle nodes sit at the
/// top IDs and stay silent.
fn run_instance<P, F>(
    params: ModelParams,
    seed: u64,
    cache: Arc<CachedSource>,
    reference: dr_core::BitArray,
    byz_nodes: usize,
    factory: F,
) -> dr_sim::RunReport
where
    P: dr_core::Protocol + 'static,
    F: FnMut(PeerId) -> P + Send + 'static,
{
    let k = params.k();
    let mut builder = SimBuilder::new(params)
        .seed(seed)
        .source(cache, reference)
        .protocol(factory);
    for b in 0..byz_nodes {
        builder = builder.byzantine(PeerId(k - 1 - b), SilentAgent::new());
    }
    builder.build().run().expect("download run failed")
}

/// The Download-based ODC pipeline (Theorem 4.2): one Download instance
/// per source; every honest node learns every source's array exactly.
///
/// Peer queries flow through a per-source [`CachedSource`] (the query
/// admission plane), so the *attributed* per-node query cost stays the
/// paper's measure while the bits actually pulled from each data source
/// are amortized across the fleet — see
/// [`OdcOutcome::upstream_read_bits`].
///
/// # Panics
///
/// Panics if a Download run deadlocks (impossible for the chosen engines
/// within their fault regimes).
pub fn run_download_based(config: &OracleConfig, engine: DownloadEngine) -> OdcOutcome {
    let fleet = SourceFleet::generate(
        config.honest_sources,
        config.corrupt_sources,
        config.cells,
        config.truth_base,
        config.spread,
        config.seed,
    );
    let k = config.nodes;
    let n_bits = config.cells * BITS_PER_VALUE;
    let honest_nodes = k - config.byz_nodes;
    // Per honest node, per source, the decoded array.
    let mut per_node_views: Vec<Vec<Vec<u64>>> = vec![Vec::new(); honest_nodes];
    let mut read_bits_per_node = vec![0u64; honest_nodes];
    let mut upstream_read_bits = 0u64;
    for s in 0..fleet.len() {
        // Reference copy for the simulator's output verification
        // (evaluation-only; not part of the collection cost).
        let values: Vec<u64> = (0..config.cells)
            .map(|c| fleet.source(s).read(PeerId(0), c))
            .collect();
        let reference = values_to_bits(&values);
        // All k nodes' queries route through one admission plane per
        // source: each cell leaves the data source at most once.
        let cache = Arc::new(CachedSource::new(
            ValueSourceBits::new(fleet.source_arc(s), PeerId(0)),
            k.min(8),
        ));
        let params = ModelParams::builder(n_bits, k)
            .faults(FaultModel::Byzantine, config.byz_nodes)
            .build()
            .expect("valid oracle params");
        let seed = config.seed.wrapping_add(1000 + s as u64);
        let byz = config.byz_nodes;
        let report = match engine {
            DownloadEngine::CrashMulti => {
                run_instance(params, seed, Arc::clone(&cache), reference, byz, move |_| {
                    CrashMultiDownload::new(n_bits, k, byz)
                })
            }
            DownloadEngine::TwoCycle => {
                run_instance(params, seed, Arc::clone(&cache), reference, byz, move |_| {
                    TwoCycleDownload::new(n_bits, k, byz)
                })
            }
        };
        upstream_read_bits += cache.stats().upstream_bits;
        for node in 0..honest_nodes {
            let bits = report.outputs[node]
                .as_ref()
                .expect("honest node terminated");
            per_node_views[node].push(bits_to_values(bits));
            read_bits_per_node[node] += report.query_counts[node];
        }
    }
    // Node reports: per-cell median across its per-source views.
    let reports: Vec<Vec<u64>> = per_node_views
        .into_iter()
        .map(|views| {
            (0..config.cells)
                .map(|c| {
                    let col: Vec<u64> = views.iter().map(|v| v[c]).collect();
                    median(&col)
                })
                .collect()
        })
        .collect();
    let total = read_bits_per_node.iter().sum();
    let max = read_bits_per_node.iter().copied().max().unwrap_or(0);
    finalize(config, &fleet, reports, total, max, upstream_read_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> OracleConfig {
        OracleConfig {
            nodes: 16,
            byz_nodes: 3,
            honest_sources: 5,
            corrupt_sources: 2,
            cells: 8,
            truth_base: 1_000_000,
            spread: 100,
            seed: 42,
        }
    }

    #[test]
    fn baseline_with_full_sampling_is_sound_but_expensive() {
        let cfg = config();
        let outcome = run_baseline(&cfg, cfg.sources());
        assert!(outcome.odd_satisfied(), "{outcome:?}");
        // Every honest node reads every source completely.
        assert_eq!(
            outcome.total_read_bits,
            ((cfg.nodes - cfg.byz_nodes) * cfg.sources() * cfg.cells * 64) as u64
        );
    }

    #[test]
    fn download_based_crash_engine_is_sound() {
        let mut cfg = config();
        cfg.byz_nodes = 0;
        let outcome = run_download_based(&cfg, DownloadEngine::CrashMulti);
        assert!(outcome.odd_satisfied(), "{outcome:?}");
    }

    #[test]
    fn download_based_two_cycle_is_sound_with_byzantine_nodes() {
        let cfg = config();
        let outcome = run_download_based(&cfg, DownloadEngine::TwoCycle);
        assert!(outcome.odd_satisfied(), "{outcome:?}");
    }

    #[test]
    fn download_based_is_cheaper_per_node() {
        let mut cfg = config();
        cfg.byz_nodes = 0;
        let baseline = run_baseline(&cfg, cfg.sources());
        let download = run_download_based(&cfg, DownloadEngine::CrashMulti);
        assert!(
            download.max_node_read_bits < baseline.max_node_read_bits,
            "download {} vs baseline {}",
            download.max_node_read_bits,
            baseline.max_node_read_bits
        );
    }

    #[test]
    fn download_based_upstream_reads_amortized() {
        // The two-cycle engine issues redundant queries across nodes
        // (attributed Q > n per source), but the admission plane pulls
        // each cell from the data source at most once.
        let cfg = config();
        let outcome = run_download_based(&cfg, DownloadEngine::TwoCycle);
        let per_source_bits = (cfg.cells * BITS_PER_VALUE) as u64;
        let ceiling = cfg.sources() as u64 * per_source_bits;
        assert!(
            outcome.upstream_read_bits <= ceiling,
            "upstream {} must not exceed one full read per source ({ceiling})",
            outcome.upstream_read_bits
        );
        assert!(
            outcome.upstream_read_bits < outcome.total_read_bits,
            "amortization must beat summed attributed cost: upstream {} vs attributed {}",
            outcome.upstream_read_bits,
            outcome.total_read_bits
        );
        // Baseline has nothing to amortize.
        let baseline = run_baseline(&cfg, cfg.sources());
        assert_eq!(baseline.upstream_read_bits, baseline.total_read_bits);
    }

    #[test]
    fn small_samples_risk_odd_violations() {
        // With q = 1 a node can land on a corrupt source; across seeds we
        // should observe at least one ODD violation — the robustness gap
        // the Download-based pipeline closes.
        let mut violated = false;
        for seed in 0..20 {
            let mut cfg = config();
            cfg.seed = seed;
            cfg.byz_nodes = 7; // near-majority garbage reports
            let outcome = run_baseline(&cfg, 1);
            violated |= !outcome.odd_satisfied();
        }
        assert!(violated, "expected q=1 sampling to violate ODD somewhere");
    }
}
