//! Median aggregation.
//!
//! Blockchain oracles aggregate redundant readings by median: as long as
//! strictly fewer than half of the aggregated values are adversarial, the
//! median lies within the range spanned by the honest values — the core
//! robustness property behind the Oracle Data Delivery guarantee (§4).

/// The lower median of a non-empty slice.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn median(values: &[u64]) -> u64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

/// Whether `value` lies in the closed range spanned by `honest` values.
///
/// # Panics
///
/// Panics if `honest` is empty.
pub fn in_honest_range(value: u64, honest: &[u64]) -> bool {
    let lo = *honest.iter().min().expect("non-empty honest set");
    let hi = *honest.iter().max().expect("non-empty honest set");
    (lo..=hi).contains(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 2, 3]), 2); // lower median
        assert_eq!(median(&[7]), 7);
    }

    #[test]
    fn median_resists_minority_corruption() {
        // 5 honest readings around 100, 4 adversarial extremes.
        let mut values = vec![99, 100, 100, 101, 102];
        values.extend([0, 0, u64::MAX, u64::MAX]);
        let m = median(&values);
        assert!(in_honest_range(m, &[99, 100, 100, 101, 102]));
    }

    #[test]
    fn median_fails_under_majority_corruption() {
        let mut values = vec![100, 101];
        values.extend([0, 0, 0]);
        let m = median(&values);
        assert!(!in_honest_range(m, &[100, 101]));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_median_panics() {
        median(&[]);
    }
}
