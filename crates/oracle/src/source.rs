//! Off-chain data sources.
//!
//! The oracle model (§4) has `m` data sources, each storing an array of
//! values (stock prices, weather readings, …). Honest sources report
//! values within a bounded spread of ground truth; up to a `β_s` fraction
//! may be Byzantine — reporting arbitrary values, or even *equivocating*
//! (answering different readers differently). Reads are metered per
//! oracle node, since source reads are the expensive step the paper's
//! Download-based ODC optimizes.

use dr_core::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A read-only off-chain data source of `cells` values.
pub trait DataSource: Send + Sync {
    /// Number of value cells.
    fn cells(&self) -> usize;

    /// Reads one cell. Honest sources ignore `reader`; equivocating
    /// Byzantine sources may not.
    fn read(&self, reader: PeerId, cell: usize) -> u64;

    /// Whether this source is honest (used only for evaluation — the
    /// protocols never see this).
    fn is_honest(&self) -> bool;
}

/// An honest, static source.
#[derive(Debug, Clone)]
pub struct HonestSource {
    values: Vec<u64>,
}

impl HonestSource {
    /// Creates an honest source with the given values.
    pub fn new(values: Vec<u64>) -> Self {
        HonestSource { values }
    }

    /// Borrow of the stored values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

impl DataSource for HonestSource {
    fn cells(&self) -> usize {
        self.values.len()
    }
    fn read(&self, _reader: PeerId, cell: usize) -> u64 {
        self.values[cell]
    }
    fn is_honest(&self) -> bool {
        true
    }
}

/// A Byzantine source that serves static but adversarial values —
/// consistent across readers (the static-data assumption of §4), just
/// wrong.
#[derive(Debug, Clone)]
pub struct CorruptSource {
    values: Vec<u64>,
}

impl CorruptSource {
    /// Creates a corrupt source with the given (wrong) values.
    pub fn new(values: Vec<u64>) -> Self {
        CorruptSource { values }
    }
}

impl DataSource for CorruptSource {
    fn cells(&self) -> usize {
        self.values.len()
    }
    fn read(&self, _reader: PeerId, cell: usize) -> u64 {
        self.values[cell]
    }
    fn is_honest(&self) -> bool {
        false
    }
}

/// A Byzantine source that *equivocates*: each reader sees a different
/// fabricated value. This violates the static-data assumption under which
/// the Download-based pipeline operates (the paper leaves dynamic data as
/// an open problem); it is used to stress the median aggregation of the
/// baseline pipeline.
#[derive(Debug, Clone)]
pub struct EquivocatingSource {
    cells: usize,
    salt: u64,
}

impl EquivocatingSource {
    /// Creates an equivocating source.
    pub fn new(cells: usize, salt: u64) -> Self {
        EquivocatingSource { cells, salt }
    }
}

impl DataSource for EquivocatingSource {
    fn cells(&self) -> usize {
        self.cells
    }
    fn read(&self, reader: PeerId, cell: usize) -> u64 {
        // Keyed pseudo-random garbage that depends on the reader.
        (self.salt ^ reader.index() as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(cell as u64)
    }
    fn is_honest(&self) -> bool {
        false
    }
}

/// A fleet of data sources plus the ground truth used to generate them.
///
/// Sources are held behind [`Arc`] so pipelines can hand a source to a
/// bit-level bridge ([`crate::ValueSourceBits`]) and on to the shared
/// query admission plane without cloning the data.
pub struct SourceFleet {
    sources: Vec<Arc<dyn DataSource>>,
    truth: Vec<u64>,
}

impl SourceFleet {
    /// Builds a fleet from explicit sources and a ground truth (used by
    /// tests and custom pipelines; [`SourceFleet::generate`] is the
    /// standard constructor).
    ///
    /// # Panics
    ///
    /// Panics unless at least one source is honest.
    pub fn from_sources(sources: Vec<Box<dyn DataSource>>, truth: Vec<u64>) -> Self {
        assert!(
            sources.iter().any(|s| s.is_honest()),
            "need at least one honest source"
        );
        SourceFleet {
            sources: sources.into_iter().map(Arc::from).collect(),
            truth,
        }
    }

    /// Appends `count` equivocating sources (each answers every reader
    /// differently — the dynamic/Byzantine regime the §4 static-data
    /// assumption excludes).
    pub fn with_equivocators(mut self, count: usize, salt: u64) -> Self {
        let cells = self.cells();
        for i in 0..count {
            self.sources
                .push(Arc::new(EquivocatingSource::new(cells, salt ^ i as u64)));
        }
        self
    }

    /// Generates a fleet: `honest` sources reporting `truth ± spread`
    /// noise, and `corrupt` sources reporting adversarial extremes.
    ///
    /// # Panics
    ///
    /// Panics if no source would be honest.
    pub fn generate(
        honest: usize,
        corrupt: usize,
        cells: usize,
        truth_base: u64,
        spread: u64,
        seed: u64,
    ) -> Self {
        assert!(honest > 0, "need at least one honest source");
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<u64> = (0..cells)
            .map(|_| truth_base + rng.gen_range(0..=spread))
            .collect();
        let mut sources: Vec<Arc<dyn DataSource>> = Vec::new();
        for _ in 0..honest {
            let values: Vec<u64> = truth
                .iter()
                .map(|&t| {
                    let noise = rng.gen_range(0..=spread);
                    t.saturating_add(noise).saturating_sub(spread / 2)
                })
                .collect();
            sources.push(Arc::new(HonestSource::new(values)));
        }
        for i in 0..corrupt {
            // Alternate between low-ball and high-ball manipulation.
            let values: Vec<u64> = truth
                .iter()
                .map(|&t| {
                    if i % 2 == 0 {
                        t / 100
                    } else {
                        t.saturating_mul(100)
                    }
                })
                .collect();
            sources.push(Arc::new(CorruptSource::new(values)));
        }
        SourceFleet { sources, truth }
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Number of cells per source.
    pub fn cells(&self) -> usize {
        self.sources.first().map_or(0, |s| s.cells())
    }

    /// Access to one source.
    pub fn source(&self, i: usize) -> &dyn DataSource {
        self.sources[i].as_ref()
    }

    /// Shared handle to one source (for bridging into the admission
    /// plane, see [`crate::ValueSourceBits`]).
    pub fn source_arc(&self, i: usize) -> Arc<dyn DataSource> {
        Arc::clone(&self.sources[i])
    }

    /// The generated ground truth (evaluation only).
    pub fn truth(&self) -> &[u64] {
        &self.truth
    }

    /// Per-cell honest range `[min, max]` over honest sources — the range
    /// the ODD specification requires published values to fall in.
    pub fn honest_range(&self, cell: usize) -> (u64, u64) {
        let honest: Vec<u64> = self
            .sources
            .iter()
            .filter(|s| s.is_honest())
            .map(|s| s.read(PeerId(0), cell))
            .collect();
        (
            *honest.iter().min().expect("honest source exists"),
            *honest.iter().max().expect("honest source exists"),
        )
    }
}

impl std::fmt::Debug for SourceFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SourceFleet[{} sources × {} cells]",
            self.len(),
            self.cells()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_fleet_has_expected_shape() {
        let fleet = SourceFleet::generate(5, 2, 8, 10_000, 10, 1);
        assert_eq!(fleet.len(), 7);
        assert_eq!(fleet.cells(), 8);
        assert_eq!(fleet.truth().len(), 8);
    }

    #[test]
    fn honest_sources_stay_within_spread() {
        let spread = 10;
        let fleet = SourceFleet::generate(4, 0, 16, 10_000, spread, 2);
        for c in 0..16 {
            let (lo, hi) = fleet.honest_range(c);
            assert!(hi - lo <= 2 * spread, "cell {c}: range [{lo},{hi}]");
        }
    }

    #[test]
    fn corrupt_sources_lie_wildly() {
        let fleet = SourceFleet::generate(2, 2, 4, 10_000, 5, 3);
        let (lo, hi) = fleet.honest_range(0);
        let corrupt_vals: Vec<u64> = (2..4).map(|s| fleet.source(s).read(PeerId(0), 0)).collect();
        assert!(corrupt_vals.iter().any(|&v| v < lo || v > hi));
    }

    #[test]
    fn equivocator_answers_readers_differently() {
        let s = EquivocatingSource::new(4, 9);
        assert_ne!(s.read(PeerId(0), 1), s.read(PeerId(1), 1));
        // But the same reader sees stable values (reads are repeatable).
        assert_eq!(s.read(PeerId(0), 1), s.read(PeerId(0), 1));
    }

    #[test]
    fn static_sources_are_reader_independent() {
        let fleet = SourceFleet::generate(2, 1, 4, 100, 2, 4);
        for s in 0..fleet.len() {
            for c in 0..4 {
                assert_eq!(
                    fleet.source(s).read(PeerId(0), c),
                    fleet.source(s).read(PeerId(5), c)
                );
            }
        }
    }
}
