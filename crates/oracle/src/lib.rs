//! Blockchain-oracle application of the Download problem (§4).
//!
//! Blockchain oracles bridge on-chain smart contracts to off-chain data.
//! Their expensive step is Oracle Data Collection (ODC): reading the
//! off-chain sources. The paper shows that replacing every node's
//! independent sampling with cooperative Download instances — one per data
//! source — cuts total source reads by roughly the sampling redundancy
//! factor while *strengthening* the delivered guarantee (every honest node
//! learns every honest source's array exactly).
//!
//! This crate implements the whole §4 pipeline:
//!
//! * [`DataSource`] implementations — honest, statically-corrupt, and
//!   equivocating sources — plus [`SourceFleet`] generation;
//! * [`run_baseline`] — the Theorem 4.1 sample-and-median ODC;
//! * [`run_download_based`] — the Theorem 4.2 Download-powered ODC, built
//!   on the `dr-protocols` Download implementations over `dr-sim`;
//! * [`Contract`] — a minimal on-chain aggregation component;
//! * the Oracle Data Delivery (ODD) specification check: every published
//!   value must lie in the honest range of its cell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod dynamic;
mod encode;
mod median;
mod odc;
mod onchain;
mod source;

pub use bridge::ValueSourceBits;
pub use dynamic::DriftingSource;
pub use encode::{bits_to_values, values_to_bits, BITS_PER_VALUE};
pub use median::{in_honest_range, median};
pub use odc::{
    run_baseline, run_baseline_on, run_download_based, DownloadEngine, OdcOutcome, OracleConfig,
};
pub use onchain::Contract;
pub use source::{CorruptSource, DataSource, EquivocatingSource, HonestSource, SourceFleet};
